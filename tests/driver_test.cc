#include "src/driver/pipeline.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "src/driver/json_writer.h"
#include "src/driver/registry.h"
#include "src/driver/result_json.h"
#include "src/driver/scenario.h"
#include "src/driver/stage.h"

namespace harvest {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndScalars) {
  JsonWriter json;
  json.BeginObject();
  json.Field("name", "dc");
  json.Field("servers", 102);
  json.Field("ratio", 0.5);
  json.Field("flag", true);
  json.Key("list").BeginArray().Value(1).Value(2).EndArray();
  json.Key("empty").BeginObject().EndObject();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            "{\n"
            "  \"name\": \"dc\",\n"
            "  \"servers\": 102,\n"
            "  \"ratio\": 0.5,\n"
            "  \"flag\": true,\n"
            "  \"list\": [\n"
            "    1,\n"
            "    2\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}\n");
}

TEST(JsonWriterTest, EscapesStringsAndRejectsNonFinite) {
  JsonWriter json;
  json.BeginObject();
  json.Field("text", "a\"b\\c\nd");
  json.Field("bad", std::numeric_limits<double>::quiet_NaN());
  json.EndObject();
  std::string out = json.TakeString();
  EXPECT_NE(out.find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
  EXPECT_NE(out.find("\"bad\": null"), std::string::npos);
}

TEST(JsonWriterTest, DoubleFormattingIsStable) {
  JsonWriter json;
  json.BeginArray();
  json.Value(1.0 / 3.0);
  json.Value(1e-9);
  json.Value(123456789.0);
  json.EndArray();
  EXPECT_EQ(json.TakeString(),
            "[\n"
            "  0.333333333333,\n"
            "  1e-09,\n"
            "  123456789\n"
            "]\n");
}

TEST(ScenarioTest, PresetsExistWithUniqueNames) {
  const auto& scenarios = AllScenarios();
  ASSERT_GE(scenarios.size(), 7u);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_FALSE(scenarios[i].name.empty());
    EXPECT_FALSE(scenarios[i].description.empty());
    for (size_t j = i + 1; j < scenarios.size(); ++j) {
      EXPECT_NE(scenarios[i].name, scenarios[j].name);
    }
  }
  EXPECT_NE(FindScenario("dc9_testbed"), nullptr);
  EXPECT_NE(FindScenario("fleet_sweep"), nullptr);
  EXPECT_NE(FindScenario("reimage_storm"), nullptr);
  EXPECT_NE(FindScenario("hetero_shapes"), nullptr);
  EXPECT_NE(FindScenario("week_horizon"), nullptr);
  EXPECT_NE(FindScenario("storm_under_load"), nullptr);
  EXPECT_NE(FindScenario("storage_stress"), nullptr);
  EXPECT_NE(FindScenario("replay_regression"), nullptr);
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST(ScenarioTest, NewPresetsCoverTheRoadmapAxes) {
  const ScenarioConfig* hetero = FindScenario("hetero_shapes");
  ASSERT_NE(hetero, nullptr);
  EXPECT_GE(hetero->server_shapes.size(), 2u);

  const ScenarioConfig* week = FindScenario("week_horizon");
  ASSERT_NE(week, nullptr);
  EXPECT_GE(week->trace_slots, kSlotsPerDay * 7);

  const ScenarioConfig* storm = FindScenario("storm_under_load");
  ASSERT_NE(storm, nullptr);
  EXPECT_TRUE(storm->reimage_storm);
  EXPECT_TRUE(storm->run_scheduling);

  const ScenarioConfig* stress = FindScenario("storage_stress");
  ASSERT_NE(stress, nullptr);
  EXPECT_TRUE(stress->reimage_storm);
  EXPECT_GT(stress->access_rate, 0.0);
  EXPECT_EQ(stress->placement_kinds.size(), 5u);
  EXPECT_GE(stress->replications.size(), 2u);
  EXPECT_TRUE(stress->run_availability);
}

TEST(ScenarioTest, ScalingClampsToWellFormedFloors) {
  const ScenarioConfig* testbed = FindScenario("dc9_testbed");
  ASSERT_NE(testbed, nullptr);
  ScenarioConfig tiny = ScaledScenario(*testbed, 1e-6);
  EXPECT_GE(tiny.testbed_servers, 42);
  EXPECT_GE(tiny.storage_blocks, 1000);
  EXPECT_GE(tiny.availability_blocks, 1000);
  EXPECT_GE(tiny.availability_accesses, 5000);
  EXPECT_GE(tiny.placement_sample_blocks, 100);

  ScenarioConfig same = ScaledScenario(*testbed, 1.0);
  EXPECT_EQ(same.testbed_servers, testbed->testbed_servers);
  EXPECT_EQ(same.storage_blocks, testbed->storage_blocks);
}

TEST(ScenarioRegistryTest, RejectsDuplicateAndUnnamedRegistrations) {
  ScenarioRegistry registry;
  ScenarioConfig config;
  config.name = "my_scenario";
  config.description = "test";
  std::string error;
  EXPECT_TRUE(registry.Register(config, &error));
  EXPECT_NE(registry.Find("my_scenario"), nullptr);

  EXPECT_FALSE(registry.Register(config, &error));
  EXPECT_NE(error.find("already registered"), std::string::npos);

  ScenarioConfig unnamed;
  EXPECT_FALSE(registry.Register(unnamed, &error));
  EXPECT_NE(error.find("empty"), std::string::npos);

  EXPECT_EQ(registry.Find("other"), nullptr);
  EXPECT_EQ(registry.scenarios().size(), 1u);
}

TEST(ScenarioOverrideTest, SplitsKeyValuePairs) {
  std::string key;
  std::string value;
  std::string error;
  EXPECT_TRUE(SplitOverride("fleet_scale=0.5", &key, &value, &error));
  EXPECT_EQ(key, "fleet_scale");
  EXPECT_EQ(value, "0.5");
  // Values may themselves contain '='; only the first one splits.
  EXPECT_TRUE(SplitOverride("a=b=c", &key, &value, &error));
  EXPECT_EQ(value, "b=c");
  EXPECT_FALSE(SplitOverride("no_equals", &key, &value, &error));
  EXPECT_NE(error.find("key=value"), std::string::npos);
  EXPECT_FALSE(SplitOverride("=value", &key, &value, &error));
}

TEST(ScenarioOverrideTest, RoundTripsEveryKnobKind) {
  ScenarioConfig config = *FindScenario("fleet_sweep");
  std::string error;
  ASSERT_TRUE(ApplyScenarioOverride(config, "fleet_scale", "0.5", &error)) << error;
  EXPECT_DOUBLE_EQ(config.fleet_scale, 0.5);
  ASSERT_TRUE(ApplyScenarioOverride(config, "run_durability", "false", &error)) << error;
  EXPECT_FALSE(config.run_durability);
  ASSERT_TRUE(ApplyScenarioOverride(config, "storage_blocks", "2500", &error)) << error;
  EXPECT_EQ(config.storage_blocks, 2500);
  // The deprecated alias still lands on the same field.
  ASSERT_TRUE(ApplyScenarioOverride(config, "durability_blocks", "3000", &error)) << error;
  EXPECT_EQ(config.storage_blocks, 3000);
  ASSERT_TRUE(ApplyScenarioOverride(config, "access_rate", "6.5", &error)) << error;
  EXPECT_DOUBLE_EQ(config.access_rate, 6.5);
  ASSERT_TRUE(ApplyScenarioOverride(config, "placement_kinds", "stock,history,soft", &error))
      << error;
  ASSERT_EQ(config.placement_kinds.size(), 3u);
  EXPECT_EQ(config.placement_kinds[2], PlacementKind::kSoft);
  ASSERT_TRUE(ApplyScenarioOverride(config, "datacenters", "DC-1,DC-4", &error)) << error;
  ASSERT_EQ(config.datacenters.size(), 2u);
  EXPECT_EQ(config.datacenters[0], "DC-1");
  ASSERT_TRUE(ApplyScenarioOverride(config, "replications", "3,4", &error)) << error;
  ASSERT_EQ(config.replications.size(), 2u);
  EXPECT_EQ(config.replications[1], 4);
  ASSERT_TRUE(ApplyScenarioOverride(config, "availability_utilizations", "0.25,0.75", &error))
      << error;
  ASSERT_EQ(config.availability_utilizations.size(), 2u);
  EXPECT_DOUBLE_EQ(config.availability_utilizations[1], 0.75);
  ASSERT_TRUE(ApplyScenarioOverride(config, "scheduling_storage", "history", &error)) << error;
  EXPECT_EQ(config.scheduling_storage, StorageVariant::kHistory);
  ASSERT_TRUE(
      ApplyScenarioOverride(config, "server_shapes", "12x32768@0.6,24x65536@0.4", &error))
      << error;
  ASSERT_EQ(config.server_shapes.size(), 2u);
  EXPECT_EQ(config.server_shapes[1].capacity.cores, 24);
  EXPECT_DOUBLE_EQ(config.server_shapes[0].weight, 0.6);
}

TEST(ScenarioOverrideTest, UnknownKeyAndMalformedValueAreUsageErrors) {
  ScenarioConfig config = *FindScenario("dc9_testbed");
  std::string error;
  EXPECT_FALSE(ApplyScenarioOverride(config, "fleet_scael", "0.5", &error));
  EXPECT_NE(error.find("unknown scenario knob"), std::string::npos);
  EXPECT_NE(error.find("fleet_scale"), std::string::npos) << "expected a suggestion: " << error;

  EXPECT_FALSE(ApplyScenarioOverride(config, "fleet_scale", "abc", &error));
  EXPECT_NE(error.find("fleet_scale"), std::string::npos);
  EXPECT_FALSE(ApplyScenarioOverride(config, "fleet_scale", "-1", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "fleet_scale", "0.5x", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "run_durability", "maybe", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "durability_blocks", "12.5", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "datacenters", "DC-11", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "replications", "3,99", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "scheduling_storage", "hdfs", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "server_shapes", "12@0.5", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "storm_fraction", "1.5", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "placement_kinds", "stock,hdfs", &error));
  EXPECT_NE(error.find("placement kind"), std::string::npos);
  EXPECT_FALSE(ApplyScenarioOverride(config, "placement_kinds", "stock,stock", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "placement_kinds", "", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "access_rate", "-1", &error));
  // Out-of-range values must error, not clamp (ERANGE) or truncate (narrowing).
  EXPECT_FALSE(
      ApplyScenarioOverride(config, "durability_blocks", "99999999999999999999", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "placement_sample_blocks", "4294967296", &error));
  EXPECT_FALSE(ApplyScenarioOverride(config, "elbow_min_gain", "1e999", &error));
}

TEST(ScenarioOverrideTest, UnknownKeyAndBadValueAreDistinctStatuses) {
  // The two failure kinds must be machine-distinguishable, not just
  // different prose: tools branch on "fix the key" vs "fix the value".
  ScenarioConfig config = *FindScenario("fleet_sweep");
  std::string error;
  EXPECT_EQ(ApplyScenarioOverrideStatus(config, "fleet_scale", "0.5", &error),
            OverrideStatus::kOk);
  EXPECT_EQ(ApplyScenarioOverrideStatus(config, "fleet_scael", "0.5", &error),
            OverrideStatus::kUnknownKey);
  EXPECT_NE(error.find("did you mean"), std::string::npos);
  EXPECT_EQ(ApplyScenarioOverrideStatus(config, "fleet_scale", "banana", &error),
            OverrideStatus::kBadValue);
  EXPECT_NE(error.find("fleet_scale"), std::string::npos);
  // String knobs ride the same machinery: empty value = bad value, typo'd
  // key = unknown key with a suggestion.
  EXPECT_EQ(ApplyScenarioOverrideStatus(config, "trace_dir", "", &error),
            OverrideStatus::kBadValue);
  EXPECT_EQ(ApplyScenarioOverrideStatus(config, "trace_dirr", "/tmp/x", &error),
            OverrideStatus::kUnknownKey);
  EXPECT_NE(error.find("trace_dir"), std::string::npos);
  EXPECT_EQ(ApplyScenarioOverrideStatus(config, "trace_dir", "some/dir", &error),
            OverrideStatus::kOk);
  EXPECT_EQ(config.trace_dir, "some/dir");
}

TEST(ScenarioOverrideTest, ValidateScenarioCatchesCrossKnobConflicts) {
  ScenarioConfig config = *FindScenario("dc9_testbed");
  EXPECT_EQ(ValidateScenario(config), "");
  std::string error;
  ASSERT_TRUE(ApplyScenarioOverride(config, "server_shapes", "48x131072@1", &error)) << error;
  EXPECT_NE(ValidateScenario(config).find("server_shapes"), std::string::npos);

  ScenarioConfig no_dcs = *FindScenario("fleet_sweep");
  no_dcs.datacenters.clear();
  EXPECT_NE(ValidateScenario(no_dcs).find("datacenters"), std::string::npos);
  EXPECT_EQ(ValidateScenario(*FindScenario("hetero_shapes")), "");
}

TEST(ScenarioOverrideTest, ClusteringKnobsReachTheSchedulingSimulation) {
  // max_classes_per_pattern must change the classes the H scheduler uses,
  // not just the clustering report: cap it at one class per pattern and the
  // per-class diagnostics must shrink to at most kNumPatterns entries.
  ScenarioConfig config = *FindScenario("dc9_testbed");
  std::string error;
  ASSERT_TRUE(ApplyScenarioOverride(config, "max_classes_per_pattern", "1", &error)) << error;
  ScenarioRunOptions options;
  options.seed = 42;
  options.scale = 0.2;
  ScenarioRunResult run = RunScenario(config, options);
  ASSERT_TRUE(run.result.datacenters[0].has_scheduling);
  const auto& diagnostics = run.result.datacenters[0].scheduling.class_diagnostics;
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_LE(diagnostics.size(), static_cast<size_t>(kNumPatterns));
}

TEST(StageApiTest, DcSeedsAreIndexDerivedAndStable) {
  // The executor's determinism rests on these being pure functions of
  // (seed, index) / (seed, tag) -- independent of threads or call order.
  EXPECT_EQ(DeriveDcSeed(42, 0), DeriveDcSeed(42, 0));
  EXPECT_NE(DeriveDcSeed(42, 0), DeriveDcSeed(42, 1));
  EXPECT_NE(DeriveDcSeed(42, 0), DeriveDcSeed(43, 0));
  EXPECT_NE(DerivedStreamSeed(7, "build"), DerivedStreamSeed(7, "clustering"));

  DcContext ctx;
  ctx.dc_seed = DeriveDcSeed(42, 3);
  EXPECT_EQ(ctx.StreamSeed("durability"), DerivedStreamSeed(DeriveDcSeed(42, 3), "durability"));
}

TEST(ResultJsonTest, RendersOverridesAndTopLevelFields) {
  ScenarioResult result;
  result.scenario = "derived";
  result.description = "desc";
  result.seed = 7;
  result.scale = 0.5;
  result.overrides = {"fleet_scale=0.5", "run_durability=false"};
  std::string json = RenderScenarioJson(result);
  EXPECT_NE(json.find("\"schema_version\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"trace_source\": \"synthetic\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet_scale=0.5\""), std::string::npos);
  EXPECT_NE(json.find("\"run_durability=false\""), std::string::npos);
  EXPECT_NE(json.find("\"datacenters\": []"), std::string::npos);
}

// Renders a run's JSON with all wall-clock telemetry zeroed: the "timing"
// block is the only intentionally nondeterministic output, so byte
// comparisons go through this.
std::string JsonWithoutTiming(ScenarioRunResult run) {
  ClearTimingForDiff(run.result);
  return RenderScenarioJson(run.result);
}

// The driver's core contract: one (scenario, seed, scale) triple produces
// byte-identical JSON across runs (modulo the wall-clock "timing" block),
// so results can be diffed by CI.
TEST(DriverPipelineTest, SameScenarioAndSeedProduceIdenticalJson) {
  const ScenarioConfig* scenario = FindScenario("dc9_testbed");
  ASSERT_NE(scenario, nullptr);
  ScenarioRunOptions options;
  options.seed = 42;
  options.scale = 0.2;
  ScenarioRunResult first = RunScenario(*scenario, options);
  ScenarioRunResult second = RunScenario(*scenario, options);
  EXPECT_EQ(JsonWithoutTiming(first), JsonWithoutTiming(second));
  EXPECT_FALSE(first.json.empty());
  // The run exercised every stage of the pipeline.
  EXPECT_NE(first.json.find("\"clustering\""), std::string::npos);
  EXPECT_NE(first.json.find("\"scheduling\""), std::string::npos);
  EXPECT_NE(first.json.find("\"placement\""), std::string::npos);
  EXPECT_NE(first.json.find("\"durability\""), std::string::npos);
  EXPECT_NE(first.json.find("\"availability\""), std::string::npos);
  EXPECT_GT(first.summary.jobs_completed, 0);
}

TEST(DriverPipelineTest, DifferentSeedsProduceDifferentJson) {
  const ScenarioConfig* scenario = FindScenario("reimage_storm");
  ASSERT_NE(scenario, nullptr);
  ScenarioRunOptions options;
  options.scale = 0.05;
  options.seed = 1;
  ScenarioRunResult first = RunScenario(*scenario, options);
  options.seed = 2;
  ScenarioRunResult second = RunScenario(*scenario, options);
  EXPECT_NE(first.json, second.json);
}

// The paper's durability headline must survive the storm scenario: history-
// based placement never loses more than stock under correlated reimaging.
TEST(DriverPipelineTest, StormScenarioKeepsHistoryAtOrBelowStockLoss) {
  const ScenarioConfig* scenario = FindScenario("reimage_storm");
  ASSERT_NE(scenario, nullptr);
  ScenarioRunOptions options;
  options.seed = 7;
  options.scale = 0.1;
  ScenarioRunResult result = RunScenario(*scenario, options);
  EXPECT_LE(result.summary.worst_history_lost_percent,
            result.summary.worst_stock_lost_percent);
}

// The threading determinism contract: the JSON document is byte-identical
// (modulo timing telemetry) for any worker-thread count, on every registered
// scenario. --threads=4 on a single-DC scenario also exercises the intra-DC
// PT/H task split.
TEST(DriverPipelineTest, ThreadCountNeverChangesJson) {
  for (const ScenarioConfig& scenario : AllScenarios()) {
    ScenarioRunOptions options;
    options.seed = 42;
    options.scale = 0.02;
    options.threads = 1;
    ScenarioRunResult serial = RunScenario(scenario, options);
    options.threads = 4;
    ScenarioRunResult parallel = RunScenario(scenario, options);
    EXPECT_EQ(JsonWithoutTiming(serial), JsonWithoutTiming(parallel))
        << "scenario " << scenario.name;
    EXPECT_FALSE(serial.json.empty());
  }
}

// Every run carries its own perf trajectory: the timing block is rendered,
// populated for the stages that ran, and cleanly removable for diffs.
TEST(DriverPipelineTest, TimingTelemetryIsRenderedAndStrippable) {
  const ScenarioConfig* scenario = FindScenario("reimage_storm");
  ASSERT_NE(scenario, nullptr);
  ScenarioRunOptions options;
  options.seed = 7;
  options.scale = 0.05;
  options.threads = 2;
  ScenarioRunResult run = RunScenario(*scenario, options);
  EXPECT_NE(run.json.find("\"timing\": {"), std::string::npos);
  EXPECT_NE(run.json.find("\"fleet_build_seconds\""), std::string::npos);
  EXPECT_EQ(run.result.timing.threads, 2);
  EXPECT_GT(run.result.timing.total_seconds, 0.0);
  ASSERT_EQ(run.result.datacenters.size(), 1u);
  const DcStageTiming& timing = run.result.datacenters[0].timing;
  EXPECT_GT(timing.total_seconds, 0.0);
  EXPECT_GE(timing.fleet_build_seconds, 0.0);
  EXPECT_GE(timing.durability_seconds, 0.0);
  // Stage times are measured inside the DC's own wall time.
  EXPECT_LE(timing.fleet_build_seconds + timing.clustering_seconds +
                timing.scheduling_seconds + timing.placement_seconds +
                timing.durability_seconds + timing.availability_seconds,
            timing.total_seconds + 1e-6);
  // Clearing the telemetry removes every timing byte from the rendering.
  std::string stripped = JsonWithoutTiming(run);
  EXPECT_NE(stripped.find("\"timing\": {"), std::string::npos);
  EXPECT_NE(stripped.find("\"total_seconds\": 0"), std::string::npos);
  EXPECT_EQ(stripped.find("\"threads\": 2"), std::string::npos);
}

TEST(DriverPipelineTest, TypedResultsMatchRenderedJsonAndSummary) {
  const ScenarioConfig* scenario = FindScenario("reimage_storm");
  ASSERT_NE(scenario, nullptr);
  ScenarioRunOptions options;
  options.seed = 5;
  options.scale = 0.05;
  ScenarioRunResult run = RunScenario(*scenario, options);
  ASSERT_EQ(run.result.datacenters.size(), 1u);
  const DatacenterResult& dc = run.result.datacenters[0];
  EXPECT_EQ(dc.name, "DC-9");
  EXPECT_GT(dc.fleet.servers, 0u);
  EXPECT_TRUE(dc.has_durability);
  EXPECT_FALSE(dc.has_scheduling);
  EXPECT_EQ(dc.durability.cells.size(),
            scenario->placement_kinds.size() * scenario->replications.size());
  EXPECT_EQ(dc.durability.placement_kinds.size(), scenario->placement_kinds.size());
  // Re-rendering the typed results reproduces the run's JSON exactly.
  EXPECT_EQ(RenderScenarioJson(run.result), run.json);
  // And the summary is a pure function of the typed results.
  ScenarioSummary summary = SummarizeScenario(run.result);
  EXPECT_EQ(summary.datacenters, run.summary.datacenters);
  EXPECT_EQ(summary.servers, run.summary.servers);
  EXPECT_DOUBLE_EQ(summary.worst_stock_lost_percent, run.summary.worst_stock_lost_percent);
}

// ISSUE-4 acceptance: the storage grid exercises every declared
// PlacementKind by default, and the JSON grid schema names them all --
// nothing silently drops kRandom/kGreedy/kSoft anymore.
TEST(DriverPipelineTest, StorageGridCoversAllFivePlacementKinds) {
  const ScenarioConfig* scenario = FindScenario("reimage_storm");
  ASSERT_NE(scenario, nullptr);
  ASSERT_EQ(scenario->placement_kinds.size(), 5u);
  ScenarioRunOptions options;
  options.seed = 11;
  options.scale = 0.05;
  ScenarioRunResult run = RunScenario(*scenario, options);
  for (PlacementKind kind : AllPlacementKinds()) {
    const std::string quoted = std::string("\"") + PlacementKindName(kind) + "\"";
    EXPECT_NE(run.json.find(quoted), std::string::npos)
        << PlacementKindName(kind) << " missing from scenario JSON";
  }
  // Grid shape: kinds x replications cells, kind-minor, with the axes
  // rendered ahead of the cells.
  ASSERT_EQ(run.result.datacenters.size(), 1u);
  const DurabilityStageResult& durability = run.result.datacenters[0].durability;
  ASSERT_EQ(durability.cells.size(), 5u * scenario->replications.size());
  for (size_t i = 0; i < durability.cells.size(); ++i) {
    EXPECT_EQ(durability.cells[i].placement, durability.placement_kinds[i % 5]);
    EXPECT_EQ(durability.cells[i].replication,
              scenario->replications[i / 5]);
  }
  EXPECT_NE(run.json.find("\"placement_kinds\""), std::string::npos);
}

// The access_rate axis: reads riding the reimage timeline observe blocks
// mid-heal, so the durability cells report access outcomes.
TEST(DriverPipelineTest, AccessRateInjectsReadsIntoTheDurabilityTimeline) {
  ScenarioConfig config = *FindScenario("reimage_storm");
  std::string error;
  ASSERT_TRUE(ApplyScenarioOverride(config, "access_rate", "40", &error)) << error;
  ASSERT_TRUE(ApplyScenarioOverride(config, "placement_kinds", "stock,history", &error))
      << error;
  ScenarioRunOptions options;
  options.seed = 11;
  options.scale = 0.05;
  ScenarioRunResult run = RunScenario(config, options);
  ASSERT_EQ(run.result.datacenters.size(), 1u);
  const DurabilityStageResult& durability = run.result.datacenters[0].durability;
  ASSERT_FALSE(durability.cells.empty());
  for (const DurabilityCellResult& cell : durability.cells) {
    EXPECT_GT(cell.accesses, 0) << cell.placement << " r" << cell.replication;
  }
  // Paired comparison: every cell of one replication saw the same accesses.
  EXPECT_EQ(durability.cells[0].accesses, durability.cells[1].accesses);
  EXPECT_NE(run.json.find("\"accesses\""), std::string::npos);
}

// --- Trace export / replay ------------------------------------------------

std::string FreshTempDir(const char* tag) {
  // mkdtemp: unique even across concurrent test processes on one machine.
  std::string pattern = (std::filesystem::temp_directory_path() /
                         (std::string("driver_trace_") + tag + "_XXXXXX"))
                            .string();
  const char* dir = mkdtemp(pattern.data());
  EXPECT_NE(dir, nullptr);
  return pattern;
}

// The tentpole contract: a replayed run byte-reproduces the synthetic run
// that exported it -- same fleets from disk, same downstream RNG streams --
// differing only in declared provenance.
TEST(TraceReplayTest, ReplayReproducesTheSyntheticRunByteIdentically) {
  const std::string dir = FreshTempDir("roundtrip");
  ScenarioConfig config = *FindScenario("reimage_storm");
  ScenarioRunOptions options;
  options.seed = 17;
  options.scale = 0.05;
  options.threads = 2;
  options.dump_traces_dir = dir;
  ScenarioRunResult synthetic = RunScenario(config, options);
  EXPECT_EQ(synthetic.result.trace_source, "synthetic");
  EXPECT_TRUE(std::filesystem::exists(dir + "/DC-9.trace"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.txt"));
  {
    // The manifest is self-describing: it names the size and shape mix of
    // every recorded fleet, so readers need not parse the binary traces.
    std::ifstream manifest(dir + "/MANIFEST.txt");
    const std::string text((std::istreambuf_iterator<char>(manifest)),
                           std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("fleet: DC-9 servers="), std::string::npos) << text;
    EXPECT_NE(text.find(" shapes=12c32768m:"), std::string::npos) << text;
  }

  ScenarioConfig replay_config = config;
  replay_config.trace_dir = dir;
  ScenarioRunOptions replay_options = options;
  replay_options.dump_traces_dir.clear();
  // Replay ignores fleet scaling (the fleet comes from disk); everything
  // else -- storage grids, placement audit, every RNG stream -- must match.
  ScenarioRunResult replayed = RunScenario(replay_config, replay_options);
  EXPECT_EQ(replayed.result.trace_source, "replay:" + dir);

  ClearTimingForDiff(synthetic.result);
  ClearTimingForDiff(replayed.result);
  // Align the one intentional difference, then demand byte equality.
  replayed.result.trace_source = synthetic.result.trace_source;
  EXPECT_EQ(RenderScenarioJson(synthetic.result), RenderScenarioJson(replayed.result));
  std::filesystem::remove_all(dir);
}

// ISSUE-5 satellite: replayed-scenario JSON is byte-identical across runs
// (and across thread counts -- replay has no RNG of its own to misuse).
TEST(TraceReplayTest, ReplayedScenarioIsDeterministic) {
  const ScenarioConfig* scenario = FindScenario("replay_regression");
  ASSERT_NE(scenario, nullptr);
  ScenarioRunOptions options;
  options.seed = 42;
  options.scale = 0.05;
  options.threads = 1;
  ScenarioRunResult first = RunScenario(*scenario, options);
  options.threads = 4;
  ScenarioRunResult second = RunScenario(*scenario, options);
  EXPECT_EQ(JsonWithoutTiming(first), JsonWithoutTiming(second));
}

// ISSUE-5 acceptance: the committed reproducer trace -- captured from the
// fleet_sweep configuration where YARN-H used to trail YARN-PT by ~19% --
// now shows H >= PT (the ranking/elbow/forecast fixes; the golden pins the
// exact numbers).
TEST(TraceReplayTest, ReplayRegressionShowsHistoryAtLeastMatchingPt) {
  const ScenarioConfig* scenario = FindScenario("replay_regression");
  ASSERT_NE(scenario, nullptr);
  EXPECT_EQ(scenario->trace_dir, "tests/traces/replay_regression");
  ScenarioRunOptions options;
  options.seed = 42;
  options.scale = 0.05;
  ScenarioRunResult run = RunScenario(*scenario, options);
  ASSERT_EQ(run.result.datacenters.size(), 1u);
  const DatacenterResult& dc = run.result.datacenters[0];
  ASSERT_TRUE(dc.has_scheduling);
  EXPECT_GE(dc.scheduling.history_improvement_percent, 0.0)
      << "YARN-H trails YARN-PT on the committed regression trace";
  // The fleet really came from disk: replay ignores --scale, so the full
  // recorded fleet ran despite the tiny smoke scale.
  EXPECT_EQ(dc.fleet.servers, 249u);
  EXPECT_NE(run.result.trace_source.find("replay:"), std::string::npos);
}

TEST(TraceReplayTest, ValidateScenarioRejectsBadReplayConfigs) {
  ScenarioConfig config = *FindScenario("replay_regression");
  config.datacenters = {"DC-4"};  // committed directory only has DC-5
  std::string error = ValidateScenario(config);
  EXPECT_NE(error.find("DC-4"), std::string::npos) << error;
  EXPECT_NE(error.find("did you mean 'DC-5'"), std::string::npos) << error;

  config = *FindScenario("fleet_sweep");
  config.trace_dir = "definitely/not/a/real/dir";
  error = ValidateScenario(config);
  EXPECT_NE(error.find("not a directory"), std::string::npos) << error;
}

// ISSUE-8 satellite: the trace manifest records the canonical fault plan of
// the capturing run, and replaying the directory under a different plan is
// a config error -- the recorded fleet and any goldens derived from it
// assume those exact injected events.
TEST(TraceReplayTest, ReplayRejectsMismatchedFaultPlan) {
  const std::string dir = FreshTempDir("faultplan");
  ScenarioConfig config = *FindScenario("reimage_storm");
  config.fault_plan = "telemetry_blackout:100,200";
  ScenarioRunOptions options;
  options.seed = 17;
  options.scale = 0.05;
  options.threads = 2;
  options.dump_traces_dir = dir;
  RunScenario(config, options);
  {
    std::ifstream manifest(dir + "/MANIFEST.txt");
    const std::string text((std::istreambuf_iterator<char>(manifest)),
                           std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("fault_plan: telemetry_blackout:100,200"), std::string::npos)
        << text;
  }

  ScenarioConfig replay = config;
  replay.trace_dir = dir;
  EXPECT_EQ(ValidateScenario(replay), "");  // same plan: accepted
  // Same plan, different spelling: the comparison is canonical, not textual.
  replay.fault_plan = "telemetry_blackout:100.0,0200";
  EXPECT_EQ(ValidateScenario(replay), "");
  replay.fault_plan = "telemetry_blackout:100,300";
  std::string error = ValidateScenario(replay);
  EXPECT_NE(error.find("fault_plan mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find("telemetry_blackout:100,200"), std::string::npos) << error;
  replay.fault_plan.clear();
  error = ValidateScenario(replay);
  EXPECT_NE(error.find("fault_plan mismatch"), std::string::npos) << error;
  std::filesystem::remove_all(dir);

  // Manifests written before the fault subsystem have no fault_plan line;
  // they read as "none", so faulted replays of legacy captures are rejected.
  ScenarioConfig legacy = *FindScenario("replay_regression");
  legacy.fault_plan = "dc_outage:10,20";
  error = ValidateScenario(legacy);
  EXPECT_NE(error.find("fault_plan mismatch"), std::string::npos) << error;
}

TEST(DriverPipelineTest, SchedulingStageEmitsPerClassDiagnostics) {
  const ScenarioConfig* scenario = FindScenario("dc9_testbed");
  ASSERT_NE(scenario, nullptr);
  ScenarioRunOptions options;
  options.seed = 42;
  options.scale = 0.2;
  ScenarioRunResult run = RunScenario(*scenario, options);
  ASSERT_EQ(run.result.datacenters.size(), 1u);
  const DatacenterResult& dc = run.result.datacenters[0];
  ASSERT_TRUE(dc.has_scheduling);
  ASSERT_FALSE(dc.scheduling.class_diagnostics.empty());
  int64_t containers = 0;
  int64_t selections = 0;
  double contribution = 0.0;
  for (const SchedulingClassResult& cls : dc.scheduling.class_diagnostics) {
    EXPECT_FALSE(cls.label.empty());
    EXPECT_FALSE(cls.pattern.empty());
    EXPECT_LE(cls.kills, cls.containers);
    if (cls.containers > 0) {
      EXPECT_GT(cls.mean_lease_seconds, 0.0);
    }
    containers += cls.containers;
    selections += cls.selections;
    contribution += cls.rank_weight_contribution;
  }
  EXPECT_GT(containers, 0);
  EXPECT_GT(selections, 0);
  EXPECT_GT(contribution, 0.0);
  EXPECT_NE(run.json.find("\"class_diagnostics\""), std::string::npos);
  EXPECT_NE(run.json.find("\"rank_weight_contribution\""), std::string::npos);
}

}  // namespace
}  // namespace harvest
