#include "src/core/utilization_clustering.h"

#include <gtest/gtest.h>

#include "src/cluster/datacenter.h"

namespace harvest {
namespace {

Cluster SmallCluster(uint64_t seed) {
  Rng rng(seed);
  BuildOptions options;
  options.trace_slots = kSlotsPerDay * 7;
  options.reimage_months = 1;
  options.scale = 0.25;
  options.per_server_traces = false;
  return BuildCluster(DatacenterByName("DC-9"), options, rng);
}

TEST(UtilizationClusteringTest, EmptyClusterIsSafe) {
  Cluster empty;
  UtilizationClusteringService service;
  Rng rng(1);
  ClusteringSnapshot snapshot = service.Run(empty, rng);
  EXPECT_TRUE(snapshot.classes.empty());
  EXPECT_TRUE(snapshot.tenant_class.empty());
}

TEST(UtilizationClusteringTest, EveryTenantHasAClass) {
  Cluster cluster = SmallCluster(2);
  UtilizationClusteringService service;
  Rng rng(3);
  ClusteringSnapshot snapshot = service.Run(cluster, rng);
  ASSERT_EQ(snapshot.tenant_class.size(), cluster.num_tenants());
  for (size_t t = 0; t < cluster.num_tenants(); ++t) {
    int c = snapshot.tenant_class[t];
    ASSERT_GE(c, 0);
    ASSERT_LT(c, static_cast<int>(snapshot.classes.size()));
    // Membership lists agree with the per-tenant mapping.
    const auto& members = snapshot.classes[static_cast<size_t>(c)].tenants;
    EXPECT_NE(std::find(members.begin(), members.end(), static_cast<TenantId>(t)),
              members.end());
  }
}

TEST(UtilizationClusteringTest, ClassesAreTaggedWithPatternAndUtilization) {
  Cluster cluster = SmallCluster(4);
  UtilizationClusteringService service;
  Rng rng(5);
  ClusteringSnapshot snapshot = service.Run(cluster, rng);
  ASSERT_FALSE(snapshot.classes.empty());
  for (const auto& cls : snapshot.classes) {
    EXPECT_FALSE(cls.tenants.empty());
    EXPECT_GE(cls.average_utilization, 0.0);
    EXPECT_LE(cls.average_utilization, 1.0);
    EXPECT_GE(cls.peak_utilization, cls.average_utilization - 1e-9);
    EXPECT_LE(cls.peak_utilization, 1.0);
    EXPECT_GT(cls.total_cores, 0);
    EXPECT_FALSE(cls.label.empty());
    // Members carry the class pattern.
    for (TenantId t : cls.tenants) {
      EXPECT_EQ(snapshot.tenant_pattern[static_cast<size_t>(t)], cls.pattern);
    }
  }
}

TEST(UtilizationClusteringTest, ClassifierRecoversGeneratorGroundTruth) {
  Cluster cluster = SmallCluster(6);
  UtilizationClusteringService service;
  Rng rng(7);
  ClusteringSnapshot snapshot = service.Run(cluster, rng);
  int agree = 0;
  for (const auto& tenant : cluster.tenants()) {
    if (snapshot.tenant_pattern[static_cast<size_t>(tenant.id)] == tenant.true_pattern) {
      ++agree;
    }
  }
  // Synthetic traces are not adversarial; expect high but imperfect accuracy.
  EXPECT_GT(agree, static_cast<int>(cluster.num_tenants()) * 8 / 10);
}

TEST(UtilizationClusteringTest, ServerCountsSumToFleet) {
  Cluster cluster = SmallCluster(8);
  UtilizationClusteringService service;
  Rng rng(9);
  ClusteringSnapshot snapshot = service.Run(cluster, rng);
  std::vector<int> tenant_counts = snapshot.TenantCountPerPattern();
  std::vector<int> server_counts = snapshot.ServerCountPerPattern(cluster);
  int tenants = 0;
  int servers = 0;
  for (int p = 0; p < kNumPatterns; ++p) {
    tenants += tenant_counts[static_cast<size_t>(p)];
    servers += server_counts[static_cast<size_t>(p)];
  }
  EXPECT_EQ(tenants, static_cast<int>(cluster.num_tenants()));
  EXPECT_EQ(servers, static_cast<int>(cluster.num_servers()));
}

TEST(UtilizationClusteringTest, ClassServersMatchTenantMembership) {
  Cluster cluster = SmallCluster(10);
  UtilizationClusteringService service;
  Rng rng(11);
  ClusteringSnapshot snapshot = service.Run(cluster, rng);
  size_t total_servers = 0;
  for (const auto& cls : snapshot.classes) {
    total_servers += cls.servers.size();
    for (ServerId s : cls.servers) {
      TenantId owner = cluster.server(s).tenant;
      EXPECT_EQ(snapshot.tenant_class[static_cast<size_t>(owner)], cls.id);
    }
  }
  EXPECT_EQ(total_servers, cluster.num_servers());
}

TEST(UtilizationClusteringTest, MaxClassesPerPatternRespected) {
  Cluster cluster = SmallCluster(12);
  ClusteringOptions options;
  options.max_classes_per_pattern = 2;
  UtilizationClusteringService service(options);
  Rng rng(13);
  ClusteringSnapshot snapshot = service.Run(cluster, rng);
  int per_pattern[kNumPatterns] = {0, 0, 0};
  for (const auto& cls : snapshot.classes) {
    ++per_pattern[static_cast<int>(cls.pattern)];
  }
  for (int p = 0; p < kNumPatterns; ++p) {
    EXPECT_LE(per_pattern[p], 2);
  }
}

TEST(UtilizationClusteringTest, WindowedRunUsesOnlyTheWindow) {
  // A tenant that is flat in the first week and bursty later must classify
  // as constant when the window covers only the first week.
  Cluster cluster;
  PrimaryTenant tenant;
  tenant.environment = 0;
  tenant.name = "windowed";
  std::vector<double> series(kSlotsPerDay * 14, 0.3);
  for (size_t i = kSlotsPerDay * 7; i < series.size(); i += 50) {
    series[i] = 0.9;
  }
  tenant.average_utilization = UtilizationTrace(std::move(series));
  TenantId id = cluster.AddTenant(std::move(tenant));
  Server server;
  server.tenant = id;
  server.utilization =
      std::make_shared<const UtilizationTrace>(cluster.tenant(id).average_utilization);
  cluster.AddServer(std::move(server));

  UtilizationClusteringService service;
  Rng rng(15);
  ClusteringSnapshot first_week = service.Run(cluster, 0, kSlotsPerDay * 7, rng);
  EXPECT_EQ(first_week.tenant_pattern[0], UtilizationPattern::kConstant);
}

}  // namespace
}  // namespace harvest
