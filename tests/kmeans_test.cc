#include "src/core/kmeans.h"

#include <gtest/gtest.h>

namespace harvest {
namespace {

std::vector<std::vector<double>> ThreeBlobs(int per_blob, Rng& rng) {
  std::vector<std::vector<double>> points;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back({centers[c][0] + rng.Normal(0.0, 0.3),
                        centers[c][1] + rng.Normal(0.0, 0.3)});
    }
  }
  return points;
}

TEST(KMeansTest, EmptyInput) {
  Rng rng(1);
  KMeansResult result = KMeansCluster({}, 3, rng);
  EXPECT_TRUE(result.assignment.empty());
  EXPECT_TRUE(result.centroids.empty());
}

TEST(KMeansTest, SinglePoint) {
  Rng rng(1);
  KMeansResult result = KMeansCluster({{1.0, 2.0}}, 3, rng);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_EQ(result.assignment, (std::vector<int>{0}));
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(2);
  auto points = ThreeBlobs(30, rng);
  KMeansResult result = KMeansCluster(points, 3, rng);
  ASSERT_EQ(result.centroids.size(), 3u);
  // All points of one blob share one assignment.
  for (int blob = 0; blob < 3; ++blob) {
    int first = result.assignment[static_cast<size_t>(blob * 30)];
    for (int i = 1; i < 30; ++i) {
      EXPECT_EQ(result.assignment[static_cast<size_t>(blob * 30 + i)], first);
    }
  }
  // Inertia is small relative to blob separation.
  EXPECT_LT(result.inertia / points.size(), 1.0);
}

TEST(KMeansTest, DuplicatePointsCollapseClusters) {
  Rng rng(3);
  std::vector<std::vector<double>> points(10, {5.0, 5.0});
  KMeansResult result = KMeansCluster(points, 4, rng);
  EXPECT_EQ(result.centroids.size(), 1u);  // seeding stops at identical points
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, AssignmentsIndexPopulatedCentroidsOnly) {
  Rng rng(4);
  auto points = ThreeBlobs(10, rng);
  KMeansResult result = KMeansCluster(points, 3, rng);
  for (int a : result.assignment) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, static_cast<int>(result.centroids.size()));
  }
}

TEST(KMeansTest, KLargerThanPointsClamps) {
  Rng rng(5);
  std::vector<std::vector<double>> points = {{0.0}, {10.0}};
  KMeansResult result = KMeansCluster(points, 10, rng);
  EXPECT_EQ(result.centroids.size(), 2u);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(6);
  auto points = ThreeBlobs(20, rng);
  double inertia1 = KMeansCluster(points, 1, rng).inertia;
  double inertia3 = KMeansCluster(points, 3, rng).inertia;
  EXPECT_LT(inertia3, inertia1 * 0.1);
}

TEST(KMeansTest, AutoPicksThreeForThreeBlobs) {
  Rng rng(7);
  auto points = ThreeBlobs(25, rng);
  KMeansResult result = KMeansAuto(points, 8, rng, /*min_gain=*/0.15);
  EXPECT_EQ(result.centroids.size(), 3u);
}

TEST(KMeansTest, AutoPicksOneForSingleBlob) {
  Rng rng(8);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.Normal(0.0, 0.4), rng.Normal(0.0, 0.4)});
  }
  KMeansResult result = KMeansAuto(points, 8, rng, /*min_gain=*/0.5);
  EXPECT_LE(result.centroids.size(), 2u);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng rng_a(11);
  Rng rng_b(11);
  auto points_a = ThreeBlobs(15, rng_a);
  auto points_b = ThreeBlobs(15, rng_b);
  KMeansResult a = KMeansCluster(points_a, 3, rng_a);
  KMeansResult b = KMeansCluster(points_b, 3, rng_b);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

// Property: centroids are the means of their members (Lloyd fixed point).
class KMeansFixedPointTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansFixedPointTest, CentroidsAreClusterMeans) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto points = ThreeBlobs(20, rng);
  KMeansResult result = KMeansCluster(points, GetParam(), rng);
  const size_t k = result.centroids.size();
  std::vector<std::vector<double>> sums(k, std::vector<double>(2, 0.0));
  std::vector<int> counts(k, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    size_t c = static_cast<size_t>(result.assignment[i]);
    sums[c][0] += points[i][0];
    sums[c][1] += points[i][1];
    ++counts[c];
  }
  for (size_t c = 0; c < k; ++c) {
    ASSERT_GT(counts[c], 0);
    EXPECT_NEAR(result.centroids[c][0], sums[c][0] / counts[c], 1e-6);
    EXPECT_NEAR(result.centroids[c][1], sums[c][1] / counts[c], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansFixedPointTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace harvest
