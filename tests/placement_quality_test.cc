#include "src/storage/placement_quality.h"

#include <gtest/gtest.h>
#include <memory>

#include "src/cluster/datacenter.h"

namespace harvest {
namespace {

Cluster SmallDc(uint64_t seed) {
  Rng rng(seed);
  BuildOptions options;
  options.trace_slots = kSlotsPerDay;
  options.reimage_months = 1;
  options.scale = 0.2;
  options.per_server_traces = false;
  return BuildCluster(DatacenterByName("DC-9"), options, rng);
}

TEST(PlacementQualityTest, FullyDiverseBlockScoresOne) {
  Cluster cluster = SmallDc(1);
  PlacementGrid grid = PlacementGrid::Build(CollectPlacementStats(cluster));
  PlacementQualityMonitor monitor(&cluster, &grid);
  // Find three tenants in pairwise-distinct rows and columns.
  std::vector<ServerId> replicas;
  std::set<int> rows;
  std::set<int> cols;
  for (const auto& tenant : cluster.tenants()) {
    auto [r, c] = grid.CellOfTenant(tenant.id);
    if (rows.count(r) == 0 && cols.count(c) == 0 && !tenant.servers.empty()) {
      replicas.push_back(tenant.servers[0]);
      rows.insert(r);
      cols.insert(c);
      if (replicas.size() == 3) {
        break;
      }
    }
  }
  ASSERT_EQ(replicas.size(), 3u);
  BlockPlacementQuality quality = monitor.ScoreBlock(replicas);
  EXPECT_DOUBLE_EQ(quality.environment_diversity, 1.0);
  EXPECT_DOUBLE_EQ(quality.row_diversity, 1.0);
  EXPECT_DOUBLE_EQ(quality.column_diversity, 1.0);
  EXPECT_DOUBLE_EQ(quality.Score(), 1.0);
}

TEST(PlacementQualityTest, SameTenantReplicasScoreLow) {
  Cluster cluster = SmallDc(2);
  PlacementGrid grid = PlacementGrid::Build(CollectPlacementStats(cluster));
  PlacementQualityMonitor monitor(&cluster, &grid);
  const auto& tenant = cluster.tenants()[0];
  ASSERT_GE(tenant.servers.size(), 3u);
  std::vector<ServerId> replicas(tenant.servers.begin(), tenant.servers.begin() + 3);
  BlockPlacementQuality quality = monitor.ScoreBlock(replicas);
  EXPECT_NEAR(quality.environment_diversity, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(quality.row_diversity, 1.0 / 3.0, 1e-12);
  EXPECT_LT(quality.Score(), 0.5);
}

TEST(PlacementQualityTest, EmptyReplicaSetIsZero) {
  Cluster cluster = SmallDc(3);
  PlacementGrid grid = PlacementGrid::Build(CollectPlacementStats(cluster));
  PlacementQualityMonitor monitor(&cluster, &grid);
  BlockPlacementQuality quality = monitor.ScoreBlock({});
  EXPECT_EQ(quality.replicas, 0);
  EXPECT_DOUBLE_EQ(quality.Score(), 0.0);
}

TEST(PlacementQualityTest, HistoryPlacementAuditsClean) {
  Cluster cluster = SmallDc(4);
  Rng rng(5);
  NameNodeOptions nn_options;
  nn_options.replication = 3;
  NameNode nn(&cluster, std::make_unique<HistoryPlacement>(&cluster), nn_options, &rng);
  for (int b = 0; b < 300; ++b) {
    nn.CreateBlock(static_cast<ServerId>(rng.NextBounded(cluster.num_servers())), 0.0);
  }
  PlacementGrid grid = PlacementGrid::Build(CollectPlacementStats(cluster));
  PlacementQualityMonitor monitor(&cluster, &grid);
  PlacementQualityReport report = monitor.Audit(nn);
  EXPECT_EQ(report.blocks, 300);
  EXPECT_DOUBLE_EQ(report.environment_violations, 0.0);
  EXPECT_GT(report.mean_score, 0.85);
  EXPECT_FALSE(monitor.ShouldStopConsumingSpace(report));
}

TEST(PlacementQualityTest, StockPlacementAuditsWorseThanHistory) {
  Cluster cluster = SmallDc(6);
  PlacementGrid grid = PlacementGrid::Build(CollectPlacementStats(cluster));
  PlacementQualityMonitor monitor(&cluster, &grid);
  auto audit = [&](std::unique_ptr<PlacementPolicy> policy) {
    Rng rng(7);
    NameNodeOptions nn_options;
    nn_options.replication = 3;
    NameNode nn(&cluster, std::move(policy), nn_options, &rng);
    for (int b = 0; b < 300; ++b) {
      nn.CreateBlock(static_cast<ServerId>(rng.NextBounded(cluster.num_servers())), 0.0);
    }
    return monitor.Audit(nn);
  };
  PlacementQualityReport stock = audit(std::make_unique<StockPlacement>(&cluster));
  PlacementQualityReport history = audit(std::make_unique<HistoryPlacement>(&cluster));
  EXPECT_GT(history.mean_score, stock.mean_score);
  // Stock's rack locality correlates with environments: violations abound.
  EXPECT_GT(stock.environment_violations, 0.3);
  EXPECT_TRUE(monitor.ShouldStopConsumingSpace(stock));
}

TEST(PlacementQualityTest, FourWayBlocksSaturateRowDiversity) {
  Cluster cluster = SmallDc(8);
  PlacementGrid grid = PlacementGrid::Build(CollectPlacementStats(cluster));
  PlacementQualityMonitor monitor(&cluster, &grid);
  Rng rng(9);
  NameNodeOptions nn_options;
  nn_options.replication = 4;
  NameNode nn(&cluster, std::make_unique<HistoryPlacement>(&cluster), nn_options, &rng);
  for (int b = 0; b < 100; ++b) {
    nn.CreateBlock(static_cast<ServerId>(rng.NextBounded(cluster.num_servers())), 0.0);
  }
  PlacementQualityReport report = monitor.Audit(nn);
  // A 4th replica must reuse one of 3 rows; the saturating denominator keeps
  // the score from penalizing that legitimate reuse.
  EXPECT_GT(report.mean_score, 0.85);
  EXPECT_DOUBLE_EQ(report.environment_violations, 0.0);
}

}  // namespace
}  // namespace harvest
