#include "src/core/job_history.h"

#include <gtest/gtest.h>

namespace harvest {
namespace {

TEST(JobHistoryTest, TypeNames) {
  EXPECT_STREQ(JobTypeName(JobType::kShort), "short");
  EXPECT_STREQ(JobTypeName(JobType::kMedium), "medium");
  EXPECT_STREQ(JobTypeName(JobType::kLong), "long");
}

TEST(JobHistoryTest, PaperThresholdsCategorize) {
  // Paper §6.1: jobs shorter than 173 s are short, longer than 433 s long.
  JobTypeThresholds thresholds;
  EXPECT_EQ(thresholds.Categorize(100.0), JobType::kShort);
  EXPECT_EQ(thresholds.Categorize(172.9), JobType::kShort);
  EXPECT_EQ(thresholds.Categorize(173.0), JobType::kMedium);
  EXPECT_EQ(thresholds.Categorize(300.0), JobType::kMedium);
  EXPECT_EQ(thresholds.Categorize(433.0), JobType::kMedium);
  EXPECT_EQ(thresholds.Categorize(433.1), JobType::kLong);
  EXPECT_EQ(thresholds.Categorize(5000.0), JobType::kLong);
}

TEST(JobHistoryTest, UnknownJobDefaultsToMedium) {
  JobHistory history;
  EXPECT_EQ(history.TypeOf("never-seen"), JobType::kMedium);
  EXPECT_LT(history.LastDuration("never-seen"), 0.0);
}

TEST(JobHistoryTest, LastRunDrivesType) {
  JobHistory history;
  history.RecordRun("q1", 100.0);
  EXPECT_EQ(history.TypeOf("q1"), JobType::kShort);
  history.RecordRun("q1", 500.0);
  EXPECT_EQ(history.TypeOf("q1"), JobType::kLong);
  EXPECT_DOUBLE_EQ(history.LastDuration("q1"), 500.0);
}

TEST(JobHistoryTest, JobsTrackedIndependently) {
  JobHistory history;
  history.RecordRun("a", 50.0);
  history.RecordRun("b", 1000.0);
  EXPECT_EQ(history.TypeOf("a"), JobType::kShort);
  EXPECT_EQ(history.TypeOf("b"), JobType::kLong);
}

TEST(DeriveThresholdsTest, EqualSharesSplitDurationMass) {
  // 100 jobs of linearly growing duration; equal capacity shares place the
  // cuts so each type carries ~1/3 of total duration (not count).
  std::vector<double> durations;
  for (int i = 1; i <= 100; ++i) {
    durations.push_back(static_cast<double>(i));
  }
  JobTypeThresholds thresholds = DeriveThresholds(durations, {1.0, 1.0, 1.0});
  // Total mass = 5050; the first cut is near sqrt(5050/3 * 2) ~ 58,
  // the second near 82 (cumulative sums of integers).
  EXPECT_GT(thresholds.short_below, 50.0);
  EXPECT_LT(thresholds.short_below, 65.0);
  EXPECT_GT(thresholds.long_above, 77.0);
  EXPECT_LT(thresholds.long_above, 90.0);
  EXPECT_LT(thresholds.short_below, thresholds.long_above);
}

TEST(DeriveThresholdsTest, SkewedSharesMoveCuts) {
  std::vector<double> durations;
  for (int i = 1; i <= 100; ++i) {
    durations.push_back(static_cast<double>(i));
  }
  // Short-preferred capacity dominates: the short bucket absorbs more mass.
  JobTypeThresholds wide_short = DeriveThresholds(durations, {8.0, 1.0, 1.0});
  JobTypeThresholds narrow_short = DeriveThresholds(durations, {1.0, 1.0, 8.0});
  EXPECT_GT(wide_short.short_below, narrow_short.short_below);
}

TEST(DeriveThresholdsTest, EmptyAndDegenerateInputs) {
  JobTypeThresholds defaults;
  JobTypeThresholds empty = DeriveThresholds({}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(empty.short_below, defaults.short_below);
  JobTypeThresholds zero_share = DeriveThresholds({1.0, 2.0}, {0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(zero_share.short_below, defaults.short_below);
  JobTypeThresholds single = DeriveThresholds({10.0}, {1.0, 1.0, 1.0});
  EXPECT_LE(single.short_below, 10.0);
  EXPECT_LE(single.short_below, single.long_above);
}

TEST(JobHistoryTest, ThresholdsCanBeReplaced) {
  JobHistory history;
  history.RecordRun("q", 300.0);
  EXPECT_EQ(history.TypeOf("q"), JobType::kMedium);
  JobTypeThresholds tight;
  tight.short_below = 400.0;
  tight.long_above = 500.0;
  history.set_thresholds(tight);
  EXPECT_EQ(history.TypeOf("q"), JobType::kShort);
}

// Property: a job consistently falls into the same type once its duration
// stabilizes (the paper's observation about the first-guess error).
class JobTypeStabilityTest : public ::testing::TestWithParam<double> {};

TEST_P(JobTypeStabilityTest, RepeatRunsKeepType) {
  JobHistory history;
  double duration = GetParam();
  history.RecordRun("stable", duration);
  JobType first = history.TypeOf("stable");
  for (int run = 0; run < 10; ++run) {
    // Durations vary a little run to run but stay within the band.
    history.RecordRun("stable", duration * (0.95 + 0.01 * run));
    EXPECT_EQ(history.TypeOf("stable"), first);
  }
}

INSTANTIATE_TEST_SUITE_P(Durations, JobTypeStabilityTest,
                         ::testing::Values(50.0, 120.0, 250.0, 600.0, 2000.0));

}  // namespace
}  // namespace harvest
