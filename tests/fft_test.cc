#include "src/signal/fft.h"

#include <cmath>
#include <gtest/gtest.h>

namespace harvest {
namespace {

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(FftTest, DeltaFunctionHasFlatSpectrum) {
  std::vector<double> series(8, 0.0);
  series[0] = 1.0;
  auto spectrum = FftReal(series);
  for (const auto& bin : spectrum) {
    EXPECT_NEAR(std::abs(bin), 1.0, 1e-12);
  }
}

TEST(FftTest, ConstantSeriesIsDcOnly) {
  std::vector<double> series(16, 3.0);
  auto magnitudes = MagnitudeSpectrum(series);
  EXPECT_NEAR(magnitudes[0], 48.0, 1e-9);
  for (size_t k = 1; k < magnitudes.size(); ++k) {
    EXPECT_NEAR(magnitudes[k], 0.0, 1e-9) << "bin " << k;
  }
}

TEST(FftTest, PureSinusoidPeaksAtItsFrequency) {
  const size_t n = 256;
  const int cycles = 10;
  std::vector<double> series(n);
  for (size_t i = 0; i < n; ++i) {
    series[i] = std::sin(2.0 * M_PI * cycles * static_cast<double>(i) / n);
  }
  auto magnitudes = MagnitudeSpectrum(series);
  size_t argmax = 1;
  for (size_t k = 1; k < magnitudes.size(); ++k) {
    if (magnitudes[k] > magnitudes[argmax]) {
      argmax = k;
    }
  }
  EXPECT_EQ(argmax, static_cast<size_t>(cycles));
  // Energy of sin over n bins splits between +/- frequencies: n/2 each.
  EXPECT_NEAR(magnitudes[argmax], n / 2.0, 1e-6);
}

TEST(FftTest, InverseRecoversInput) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 32; ++i) {
    data.emplace_back(std::cos(0.3 * i), std::sin(0.11 * i));
  }
  auto original = data;
  FftInPlace(data, /*inverse=*/false);
  FftInPlace(data, /*inverse=*/true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real() / 32.0, original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag() / 32.0, original[i].imag(), 1e-10);
  }
}

TEST(FftTest, LinearityOfTransform) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  std::vector<double> b = {0.5, -1.0, 0.25, 2.0, -0.75, 1.5, 0.0, -2.0};
  std::vector<double> sum(8);
  for (size_t i = 0; i < 8; ++i) {
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  auto fa = FftReal(a);
  auto fb = FftReal(b);
  auto fsum = FftReal(sum);
  for (size_t k = 0; k < fsum.size(); ++k) {
    std::complex<double> expected = 2.0 * fa[k] + 3.0 * fb[k];
    EXPECT_NEAR(fsum[k].real(), expected.real(), 1e-9);
    EXPECT_NEAR(fsum[k].imag(), expected.imag(), 1e-9);
  }
}

TEST(FftTest, NonPowerOfTwoInputIsZeroPadded) {
  std::vector<double> series(100, 1.0);
  auto spectrum = FftReal(series);
  EXPECT_EQ(spectrum.size(), 128u);
  // DC bin is the sum of the (padded) series.
  EXPECT_NEAR(spectrum[0].real(), 100.0, 1e-9);
}

// Parseval's theorem as a property over sizes.
class FftParsevalTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftParsevalTest, EnergyPreserved) {
  const size_t n = GetParam();
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double v = std::sin(0.7 * static_cast<double>(i)) + 0.2 * static_cast<double>(i % 5);
    data[i] = {v, 0.0};
    time_energy += v * v;
  }
  FftInPlace(data, /*inverse=*/false);
  double freq_energy = 0.0;
  for (const auto& bin : data) {
    freq_energy += std::norm(bin);
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6 * time_energy + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftParsevalTest, ::testing::Values(2, 8, 64, 512, 4096));

}  // namespace
}  // namespace harvest
