#include "src/experiments/scheduling_sim.h"

#include <gtest/gtest.h>

#include "src/cluster/datacenter.h"
#include "src/jobs/tpcds.h"

namespace harvest {
namespace {

// A fast testbed: 42 servers, one day of traces, 1-hour run.
Cluster FastTestbed(uint64_t seed) {
  Rng rng(seed);
  return BuildTestbedCluster(42, kSlotsPerDay, rng);
}

SchedulingSimOptions FastOptions(SchedulerMode mode) {
  SchedulingSimOptions options;
  options.mode = mode;
  options.horizon_seconds = 3600.0;
  options.mean_interarrival_seconds = 120.0;
  options.seed = 5;
  return options;
}

std::vector<JobDag> SmallSuite() {
  // A few queries keep the test fast while exercising multi-stage DAGs.
  auto full = BuildTpcDsSuite(3);
  return {full[0], full[1], full[3], full[4], full[6]};
}

TEST(SchedulingSimTest, JobsCompleteUnderAllModes) {
  Cluster cluster = FastTestbed(1);
  auto suite = SmallSuite();
  for (SchedulerMode mode :
       {SchedulerMode::kStock, SchedulerMode::kPrimaryAware, SchedulerMode::kHistory}) {
    SchedulingSimResult result = RunSchedulingSimulation(cluster, suite, FastOptions(mode));
    EXPECT_GT(result.jobs_arrived, 0) << SchedulerModeName(mode);
    EXPECT_GT(result.jobs_completed, 0) << SchedulerModeName(mode);
    EXPECT_LE(result.jobs_completed, result.jobs_arrived);
    EXPECT_GT(result.average_execution_seconds, 0.0);
    for (const auto& job : result.jobs) {
      EXPECT_GE(job.execution_seconds, 0.0);
      EXPECT_LE(job.finish_seconds, FastOptions(mode).horizon_seconds + 1e-6);
      EXPECT_GE(job.arrival_seconds, 0.0);
    }
  }
}

TEST(SchedulingSimTest, StockModeNeverKills) {
  Cluster cluster = FastTestbed(2);
  SchedulingSimResult result =
      RunSchedulingSimulation(cluster, SmallSuite(), FastOptions(SchedulerMode::kStock));
  EXPECT_EQ(result.total_kills, 0);
}

TEST(SchedulingSimTest, HarvestingRaisesUtilization) {
  Cluster cluster = FastTestbed(3);
  SchedulingSimOptions options = FastOptions(SchedulerMode::kPrimaryAware);
  SchedulingSimResult result = RunSchedulingSimulation(cluster, SmallSuite(), options);
  // Total utilization strictly above the primary-only floor.
  EXPECT_GT(result.average_total_utilization, result.average_primary_utilization + 0.01);
}

TEST(SchedulingSimTest, DeterministicForSeed) {
  Cluster cluster = FastTestbed(4);
  auto suite = SmallSuite();
  SchedulingSimOptions options = FastOptions(SchedulerMode::kHistory);
  SchedulingSimResult a = RunSchedulingSimulation(cluster, suite, options);
  SchedulingSimResult b = RunSchedulingSimulation(cluster, suite, options);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_DOUBLE_EQ(a.average_execution_seconds, b.average_execution_seconds);
  EXPECT_EQ(a.total_kills, b.total_kills);
}

TEST(SchedulingSimTest, LatencySeriesCollectedWhenRequested) {
  Cluster cluster = FastTestbed(5);
  SchedulingSimOptions options = FastOptions(SchedulerMode::kPrimaryAware);
  options.collect_latency = true;
  SchedulingSimResult result = RunSchedulingSimulation(cluster, SmallSuite(), options);
  // One sample per minute over an hour (boundary effects allow slack).
  EXPECT_GE(result.p99_series_ms.size(), 55u);
  EXPECT_LE(result.p99_series_ms.size(), 61u);
  for (double p99 : result.p99_series_ms) {
    EXPECT_GT(p99, 200.0);
    EXPECT_LT(p99, 3000.0);
  }
}

TEST(SchedulingSimTest, NoHarvestingBaselineRunsCleanly) {
  Cluster cluster = FastTestbed(6);
  SchedulingSimOptions options = FastOptions(SchedulerMode::kPrimaryAware);
  options.collect_latency = true;
  SchedulingSimResult result = RunNoHarvestingBaseline(cluster, options);
  EXPECT_EQ(result.jobs_arrived, 0);
  EXPECT_EQ(result.total_kills, 0);
  EXPECT_FALSE(result.p99_series_ms.empty());
  // Pure primary latency stays near the calibrated base.
  for (double p99 : result.p99_series_ms) {
    EXPECT_LT(p99, 700.0);
  }
}

TEST(SchedulingSimTest, StorageVariantsTrackAccesses) {
  Cluster cluster = FastTestbed(7);
  SchedulingSimOptions options = FastOptions(SchedulerMode::kPrimaryAware);
  options.storage = StorageVariant::kPrimaryAware;
  options.storage_blocks = 500;
  SchedulingSimResult result = RunSchedulingSimulation(cluster, SmallSuite(), options);
  EXPECT_GT(result.storage.accesses, 0);
  EXPECT_EQ(result.storage.blocks_created, 500);
}

TEST(SchedulingSimTest, StockStorageInterferesInsteadOfFailing) {
  Cluster cluster = FastTestbed(8);
  SchedulingSimOptions options = FastOptions(SchedulerMode::kStock);
  options.storage = StorageVariant::kStock;
  options.storage_blocks = 500;
  SchedulingSimResult result = RunSchedulingSimulation(cluster, SmallSuite(), options);
  EXPECT_EQ(result.storage.failed_accesses, 0);
}

TEST(SchedulingSimTest, HistoryStorageUsesHistoryPlacement) {
  Cluster cluster = FastTestbed(9);
  SchedulingSimOptions options = FastOptions(SchedulerMode::kHistory);
  options.storage = StorageVariant::kHistory;
  options.storage_blocks = 300;
  SchedulingSimResult result = RunSchedulingSimulation(cluster, SmallSuite(), options);
  EXPECT_EQ(result.storage.blocks_created, 300);
}

TEST(StorageVariantTest, Names) {
  EXPECT_STREQ(StorageVariantName(StorageVariant::kNone), "none");
  EXPECT_STREQ(StorageVariantName(StorageVariant::kStock), "HDFS-Stock");
  EXPECT_STREQ(StorageVariantName(StorageVariant::kPrimaryAware), "HDFS-PT");
  EXPECT_STREQ(StorageVariantName(StorageVariant::kHistory), "HDFS-H");
}

// Integration property: across seeds, history scheduling completes the same
// workload at least as fast on average as the primary-aware baseline (the
// paper's central scheduling claim, Figs 11/13). On tiny testbeds the margin
// is noisy, so a small relative slack is allowed.
class ExecTimeComparisonTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecTimeComparisonTest, HistoryNoSlowerThanPrimaryAware) {
  Rng rng(GetParam());
  Cluster cluster = BuildTestbedCluster(60, kSlotsPerDay * 2, rng);
  auto suite = SmallSuite();
  SchedulingSimOptions pt = FastOptions(SchedulerMode::kPrimaryAware);
  pt.horizon_seconds = 3.0 * 3600.0;
  pt.seed = GetParam();
  SchedulingSimOptions h = pt;
  h.mode = SchedulerMode::kHistory;
  SchedulingSimResult pt_result = RunSchedulingSimulation(cluster, suite, pt);
  SchedulingSimResult h_result = RunSchedulingSimulation(cluster, suite, h);
  ASSERT_GT(pt_result.jobs_completed, 0);
  ASSERT_GT(h_result.jobs_completed, 0);
  EXPECT_LE(h_result.average_execution_seconds,
            pt_result.average_execution_seconds * 1.10)
      << "seed " << GetParam() << ": H avg " << h_result.average_execution_seconds
      << "s vs PT avg " << pt_result.average_execution_seconds << "s";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecTimeComparisonTest, ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace harvest
