// Oracle for the power subsystem's deterministic accounting:
//
//   * EnergyAccountant vs dense reintegration: a randomized sequence of
//     park / unpark toggles, container starts / ends, and slot
//     integrations is mirrored into a naive per-server oracle that redoes
//     every integral with the dense int64 milliwatt sum. Three accountants
//     at shard counts {1, 3, 8} (and different slot_threads) run the same
//     sequence; all four ledgers must agree EXACTLY -- the integer
//     partials make the per-slot sum associative, so shard layout cannot
//     move a bit of the double accumulation either.
//
//   * ResourceManager right-sizing vs the cache audit: randomized
//     Allocate / Release / EnforceReserves / UpdateParking sequences with
//     AuditCachesForTest after every operation, parked-count invariants,
//     and the guarantee that a parked server never receives a placement.
//     Parking transitions (events, forced unparks, final parked set) must
//     be identical across shard counts.
//
//   * The full co-simulation with power accounting, right-sizing, and
//     wave deferral enabled must produce identical energy ledgers and
//     job counters across (rm_shards, slot_threads) layouts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/cluster/fleet_table.h"
#include "src/experiments/scheduling_sim.h"
#include "src/jobs/tpcds.h"
#include "src/power/energy_accountant.h"
#include "src/power/power_model.h"
#include "src/power/price_curve.h"
#include "src/scheduler/node_manager.h"
#include "src/scheduler/resource_manager.h"
#include "src/util/rng.h"

namespace harvest {
namespace {

constexpr int kAccountantOps = 600;
constexpr int kParkingOps = 1200;

PriceCurve DiurnalPrice() {
  PriceCurve price;
  std::string error;
  EXPECT_TRUE(PriceCurve::Parse("diurnal:0.08,0.05,18", &price, &error)) << error;
  price.ShiftPhase(5.0 * 3600.0);  // off-grid phase: exercise the shifted integral
  return price;
}

// The dense reference ledger: per-server reintegration of the same op
// sequence, accumulating in the same expression order as the accountant so
// equality is exact, not approximate.
struct DenseOracle {
  const FleetTable* table;
  PowerModel model;
  PriceCurve price;
  double cap_watts;
  std::vector<uint8_t> parked;  // per server
  int64_t secondary_mw = 0;
  EnergyTotals totals;
  double last_watts = 0.0;

  DenseOracle(const FleetTable* t, PriceCurve p, double cap)
      : table(t), price(p), cap_watts(cap), parked(t->num_servers(), 0) {}

  int64_t FleetMilliwatts(double t) const {
    int64_t mw = 0;
    for (size_t s = 0; s < table->num_servers(); ++s) {
      const int capacity = table->capacity_cores()[s];
      if (parked[s] != 0) {
        mw += model.ParkedMilliwatts(capacity);
        continue;
      }
      const int32_t trace = table->trace_index()[s];
      const int primary =
          trace < 0 ? 0
                    : NodeManager::ForecastCoresFromPeak(table->trace(trace)->AtTime(t),
                                                         capacity);
      mw += model.IdleMilliwatts(capacity) +
            model.active_per_core_mw * static_cast<int64_t>(primary);
    }
    return mw;
  }

  void IntegrateSlot(double t0, double t1) {
    const double dt = t1 - t0;
    const int64_t fleet_mw = FleetMilliwatts(t0);
    const double fleet_watts = static_cast<double>(fleet_mw) / 1000.0;
    totals.fleet_joules += fleet_watts * dt;
    totals.cost_dollars += price.CostDollars(fleet_watts, t0, t1);
    int64_t parked_total = 0;
    for (uint8_t p : parked) {
      parked_total += p;
    }
    totals.parked_server_seconds += static_cast<double>(parked_total) * dt;
    const double watts = fleet_watts + static_cast<double>(secondary_mw) / 1000.0;
    last_watts = watts;
    totals.peak_power_watts = std::max(totals.peak_power_watts, watts);
    if (cap_watts > 0.0 && watts > cap_watts) {
      ++totals.slots_over_cap;
    }
  }

  void OnContainerStart(int cores) {
    secondary_mw += model.active_per_core_mw * static_cast<int64_t>(cores);
  }

  void OnContainerEnd(int cores, double start, double end) {
    secondary_mw -= model.active_per_core_mw * static_cast<int64_t>(cores);
    const double watts =
        static_cast<double>(model.active_per_core_mw * static_cast<int64_t>(cores)) / 1000.0;
    totals.container_joules += watts * (end - start);
    totals.cost_dollars += price.CostDollars(watts, start, end);
  }
};

void ExpectLedgersEqual(const EnergyTotals& got, const EnergyTotals& want,
                        const std::string& label) {
  // Exact equality on purpose: the dense oracle mirrors the accountant's
  // accumulation order term for term, and the per-slot sums are integers.
  EXPECT_EQ(got.fleet_joules, want.fleet_joules) << label;
  EXPECT_EQ(got.container_joules, want.container_joules) << label;
  EXPECT_EQ(got.cost_dollars, want.cost_dollars) << label;
  EXPECT_EQ(got.peak_power_watts, want.peak_power_watts) << label;
  EXPECT_EQ(got.slots_over_cap, want.slots_over_cap) << label;
  EXPECT_EQ(got.parked_server_seconds, want.parked_server_seconds) << label;
}

// Randomized park / container / integration sequence, mirrored into the
// dense oracle and into accountants at shard counts {1, 3, 8}.
TEST(PowerOracleTest, AccountantMatchesDenseReintegrationAcrossShardCounts) {
  Rng build_rng(11);
  Cluster cluster = BuildTestbedCluster(48, kSlotsPerDay, build_rng);
  FleetTable table(cluster);
  const PriceCurve price = DiurnalPrice();
  // Low enough that busy intervals trip it (the 48-server testbed idles
  // around 4.3 kW), high enough that it is not a constant.
  const double cap_watts = 5200.0;

  const int shard_counts[] = {1, 3, 8};
  const int thread_counts[] = {1, 2, 4};
  std::vector<EnergyAccountant> accountants;
  accountants.reserve(3);
  for (int i = 0; i < 3; ++i) {
    accountants.emplace_back(&table, PowerModel{}, price, shard_counts[i],
                             thread_counts[i], cap_watts);
  }
  DenseOracle dense(&table, price, cap_watts);

  // Parked counts as the accountant consumes them: per telemetry group.
  std::vector<int32_t> group_parked(static_cast<size_t>(table.num_groups()), 0);

  struct LiveContainer {
    int cores;
    double start;
  };
  std::vector<LiveContainer> live;
  Rng op_rng(11 ^ 0x9e3779b9ULL);
  double t = 0.0;
  int64_t park_toggles = 0;
  int64_t containers_ended = 0;

  for (int op = 0; op < kAccountantOps; ++op) {
    // Integrate up to the new time first: park toggles below take power
    // effect at the NEXT integration, the accountant's documented
    // convention.
    const double t1 = t + op_rng.Uniform(30.0, 300.0);
    const int64_t dense_mw = dense.FleetMilliwatts(t);
    for (auto& accountant : accountants) {
      ASSERT_EQ(accountant.FleetMilliwatts(t, &group_parked), dense_mw) << "op " << op;
      accountant.IntegrateSlot(t, t1, &group_parked);
    }
    dense.IntegrateSlot(t, t1);
    for (auto& accountant : accountants) {
      ASSERT_EQ(accountant.last_power_watts(), dense.last_watts) << "op " << op;
    }
    t = t1;

    const uint64_t kind = op_rng.NextBounded(10);
    if (kind < 3) {
      const size_t s = static_cast<size_t>(op_rng.NextBounded(table.num_servers()));
      const int32_t g = table.group()[s];
      if (dense.parked[s] != 0) {
        dense.parked[s] = 0;
        --group_parked[static_cast<size_t>(g)];
      } else {
        dense.parked[s] = 1;
        ++group_parked[static_cast<size_t>(g)];
      }
      ++park_toggles;
    } else if (kind < 7 || live.empty()) {
      const int cores = static_cast<int>(op_rng.UniformInt(1, 4));
      for (auto& accountant : accountants) {
        accountant.OnContainerStart(cores);
      }
      dense.OnContainerStart(cores);
      live.push_back({cores, t});
    } else {
      const size_t idx = static_cast<size_t>(op_rng.NextBounded(live.size()));
      const LiveContainer ending = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      for (auto& accountant : accountants) {
        accountant.OnContainerEnd(ending.cores, ending.start, t);
      }
      dense.OnContainerEnd(ending.cores, ending.start, t);
      ++containers_ended;
    }
  }
  // Drain the stragglers so the container integrals are complete.
  for (const LiveContainer& ending : live) {
    for (auto& accountant : accountants) {
      accountant.OnContainerEnd(ending.cores, ending.start, t);
    }
    dense.OnContainerEnd(ending.cores, ending.start, t);
  }

  for (int i = 0; i < 3; ++i) {
    ExpectLedgersEqual(accountants[static_cast<size_t>(i)].totals(), dense.totals,
                       "shards=" + std::to_string(shard_counts[i]));
  }
  // The mix actually exercised every branch.
  EXPECT_GT(park_toggles, 50);
  EXPECT_GT(containers_ended, 50);
  EXPECT_GT(dense.totals.slots_over_cap, 0);
  EXPECT_LT(dense.totals.slots_over_cap, kAccountantOps);
  EXPECT_GT(dense.totals.parked_server_seconds, 0.0);
}

// One parking-oracle run's observable outcome, for cross-shard comparison.
struct ParkingSummary {
  int64_t park_events = 0;
  int64_t unpark_events = 0;
  int64_t forced_unparks = 0;
  int64_t final_parked = 0;
  std::vector<uint8_t> parked_set;
};

ParkingSummary RunParkingOracle(uint64_t seed, int shards) {
  Rng build_rng(seed);
  Cluster cluster = BuildTestbedCluster(48, kSlotsPerDay, build_rng);
  ResourceManager rm(&cluster, SchedulerMode::kHistory, kDefaultReserve, shards);
  std::vector<int> classes(cluster.num_servers());
  for (size_t s = 0; s < classes.size(); ++s) {
    classes[s] = static_cast<int>(s % 4);
  }
  rm.SetServerClasses(std::move(classes));
  ResourceManager::RightSizingOptions rightsizing;
  rightsizing.enabled = true;
  // Generous threshold: the testbed mixes stable / diurnal / bursty
  // tenants, and the point here is lots of transitions, not realism.
  rightsizing.park_threshold = 0.55;
  rm.ConfigureRightSizing(rightsizing);

  Rng op_rng(seed ^ 0x0badc0ffeeULL);
  Rng rng(seed ^ 0x5eedULL);
  std::vector<Container> live;
  double t = 0.0;

  for (int op = 0; op < kParkingOps; ++op) {
    t += op_rng.Uniform(0.0, 250.0);
    const uint64_t kind = op_rng.NextBounded(10);
    if (kind < 4 || live.empty()) {
      ContainerRequest request;
      request.job = op;
      request.count = static_cast<int>(op_rng.UniformInt(1, 8));
      request.resources = op_rng.Bernoulli(0.8) ? Resources{1, 2048} : Resources{2, 4096};
      request.task_seconds = op_rng.Uniform(20.0, 300.0);
      request.history_aware = true;
      std::vector<Container> placed = rm.Allocate(request, t, rng);
      for (const Container& container : placed) {
        // A parked server has zero cached availability; the samplers must
        // never pick one.
        EXPECT_FALSE(rm.IsParked(container.server)) << "op " << op;
      }
      live.insert(live.end(), placed.begin(), placed.end());
    } else if (kind < 7) {
      const size_t idx = static_cast<size_t>(op_rng.NextBounded(live.size()));
      rm.Release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (kind < 9) {
      rm.UpdateParking(t);
    } else {
      std::vector<Container> killed = rm.EnforceReserves(t);
      for (const Container& container : killed) {
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [&container](const Container& c) {
                                    return c.id == container.id;
                                  }),
                   live.end());
      }
    }

    std::string error;
    EXPECT_TRUE(rm.AuditCachesForTest(&error)) << "op " << op << ": " << error;
    // Parked-count invariants: the scalar, the per-group counts, and the
    // per-server bits always agree.
    int64_t by_group = 0;
    for (int32_t count : rm.group_parked()) {
      by_group += count;
    }
    int64_t by_server = 0;
    for (ServerId s = 0; s < static_cast<ServerId>(rm.num_nodes()); ++s) {
      by_server += rm.IsParked(s) ? 1 : 0;
    }
    EXPECT_EQ(rm.parked_count(), by_group) << "op " << op;
    EXPECT_EQ(rm.parked_count(), by_server) << "op " << op;
  }

  ParkingSummary summary;
  summary.park_events = rm.parking_stats().park_events;
  summary.unpark_events = rm.parking_stats().unpark_events;
  summary.forced_unparks = rm.parking_stats().forced_unparks;
  summary.final_parked = rm.parked_count();
  summary.parked_set.resize(rm.num_nodes());
  for (ServerId s = 0; s < static_cast<ServerId>(rm.num_nodes()); ++s) {
    summary.parked_set[static_cast<size_t>(s)] = rm.IsParked(s) ? 1 : 0;
  }
  return summary;
}

TEST(PowerOracleTest, RandomizedParkingKeepsRmCachesExactAcrossShardCounts) {
  const ParkingSummary reference = RunParkingOracle(404, /*shards=*/1);
  // The testbed's calmer tenants must actually park and transition back;
  // a zero here means the windows or thresholds went dead.
  EXPECT_GT(reference.park_events, 0);
  EXPECT_GT(reference.unpark_events, 0);
  for (int shards : {3, 8}) {
    const ParkingSummary summary = RunParkingOracle(404, shards);
    EXPECT_EQ(summary.park_events, reference.park_events) << "shards=" << shards;
    EXPECT_EQ(summary.unpark_events, reference.unpark_events) << "shards=" << shards;
    EXPECT_EQ(summary.forced_unparks, reference.forced_unparks) << "shards=" << shards;
    EXPECT_EQ(summary.final_parked, reference.final_parked) << "shards=" << shards;
    EXPECT_EQ(summary.parked_set, reference.parked_set) << "shards=" << shards;
  }
}

// Full co-simulation: energy ledger, parking counters, and deferral
// counters must be identical across accounting layouts.
TEST(PowerOracleTest, SimulationEnergyIdenticalAcrossShardLayouts) {
  Rng build_rng(5);
  Cluster cluster = BuildTestbedCluster(42, kSlotsPerDay, build_rng);
  auto full = BuildTpcDsSuite(3);
  std::vector<JobDag> suite = {full[0], full[1], full[3], full[4], full[6]};

  SchedulingSimOptions options;
  options.mode = SchedulerMode::kHistory;
  options.horizon_seconds = 4.0 * 3600.0;
  options.mean_interarrival_seconds = 240.0;
  options.seed = 9;
  options.power_accounting = true;
  options.energy_price = "diurnal:0.08,0.05,18";
  options.dc_index = 1;
  options.price_phase_hours = 8.0;
  options.rightsizing = true;
  options.park_threshold = 0.45;
  options.defer_waves = true;
  options.defer_window_hours = 4.0;
  options.defer_min_gain = 0.01;
  options.power_cap_watts = 4500.0;

  SchedulingSimResult reference;
  bool have_reference = false;
  const int layouts[][2] = {{1, 1}, {3, 2}, {8, 4}};  // {rm_shards, slot_threads}
  for (const auto& layout : layouts) {
    SchedulingSimOptions run = options;
    run.rm_shards = layout[0];
    run.slot_threads = layout[1];
    SchedulingSimResult result = RunSchedulingSimulation(cluster, suite, run);
    ASSERT_TRUE(result.has_energy);
    EXPECT_GT(result.energy.fleet_joules, 0.0);
    if (!have_reference) {
      reference = result;
      have_reference = true;
      continue;
    }
    const std::string label =
        "rm_shards=" + std::to_string(layout[0]) +
        " slot_threads=" + std::to_string(layout[1]);
    ExpectLedgersEqual(result.energy, reference.energy, label);
    EXPECT_EQ(result.energy.park_events, reference.energy.park_events) << label;
    EXPECT_EQ(result.energy.unpark_events, reference.energy.unpark_events) << label;
    EXPECT_EQ(result.energy.forced_unparks, reference.energy.forced_unparks) << label;
    EXPECT_EQ(result.energy.deferred_jobs, reference.energy.deferred_jobs) << label;
    EXPECT_EQ(result.energy.deferred_seconds, reference.energy.deferred_seconds) << label;
    EXPECT_EQ(result.jobs_arrived, reference.jobs_arrived) << label;
    EXPECT_EQ(result.jobs_completed, reference.jobs_completed) << label;
    EXPECT_EQ(result.total_kills, reference.total_kills) << label;
  }
  // The run exercised the policies, not just the ledger: the 4.5 kW cap
  // sits below the testbed's busy draw, so cap-forced deferral must fire.
  EXPECT_GT(reference.energy.deferred_jobs, 0);
  EXPECT_GT(reference.energy.slots_over_cap, 0);
}

}  // namespace
}  // namespace harvest
