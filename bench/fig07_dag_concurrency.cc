// Figure 7: the TPC-DS query 19 execution DAG and Tez-H's estimate of the
// maximum amount of concurrent resources via breadth-first traversal (the
// paper derives 469 concurrent containers). Also prints the estimate for
// every query of the synthetic suite.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/jobs/tpcds.h"

int main() {
  using namespace harvest;
  PrintHeader("Figure 7", "job execution DAG and max-concurrency estimate (TPC-DS q19)");

  JobDag q19 = BuildQuery19();
  std::vector<int> levels = q19.Levels();
  std::printf("\n%-12s %8s %8s %12s %s\n", "stage", "tasks", "level", "task secs", "parents");
  for (int s = 0; s < q19.num_stages(); ++s) {
    const Stage& stage = q19.stage(s);
    std::printf("%-12s %8d %8d %12.0f ", stage.name.c_str(), stage.num_tasks,
                levels[static_cast<size_t>(s)], stage.task_seconds);
    for (int parent : stage.parents) {
      std::printf("%s ", q19.stage(parent).name.c_str());
    }
    std::printf("\n");
  }

  int max_level = 0;
  for (int level : levels) {
    max_level = std::max(max_level, level);
  }
  std::printf("\nConcurrent tasks per BFS level:");
  for (int level = 0; level <= max_level; ++level) {
    int tasks = 0;
    for (int s = 0; s < q19.num_stages(); ++s) {
      if (levels[static_cast<size_t>(s)] == level) {
        tasks += q19.stage(s).num_tasks;
      }
    }
    std::printf(" (%d)", tasks);
  }
  std::printf("\nEstimated max concurrent containers: %d (paper: 469)\n",
              q19.MaxConcurrentTasks());

  PrintRule();
  std::printf("Max-concurrency estimates across the 52-query suite:\n");
  auto suite = BuildTpcDsSuite(2016);
  for (size_t q = 0; q < suite.size(); ++q) {
    std::printf("  %-10s stages=%2d max_concurrency=%4d critical_path=%5.0fs\n",
                suite[q].name().c_str(), suite[q].num_stages(), suite[q].MaxConcurrentTasks(),
                suite[q].CriticalPathSeconds());
  }
  return 0;
}
