// Figure 15: percentage of lost blocks over one simulated year of disk
// reimages, for HDFS-Stock vs HDFS-H at three- and four-way replication,
// across the ten datacenters. Paper shape: HDFS-H cuts data loss by more
// than two orders of magnitude at 3x (zero for one datacenter) and
// eliminates loss entirely at 4x, while HDFS-Stock loses blocks everywhere;
// HDFS-H at 3x usually beats HDFS-Stock at 4x.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/durability.h"

int main() {
  using namespace harvest;
  PrintHeader("Figure 15", "lost blocks over one year, 3x and 4x replication");

  const int64_t blocks = static_cast<int64_t>(80000 * BenchScale());
  std::printf("\nblocks per run: %lld (paper: 4M; percentages are the comparable metric)\n",
              (long long)blocks);
  std::printf("\n%-6s %16s %16s %16s %16s\n", "DC", "Stock-3x lost%", "H-3x lost%",
              "Stock-4x lost%", "H-4x lost%");

  double stock3_total = 0.0;
  double h3_total = 0.0;
  int h4_losses = 0;
  for (const auto& profile : AllDatacenterProfiles()) {
    Rng rng(2016 + StableHash(profile.name));
    BuildOptions build;
    build.trace_slots = kSlotsPerDay;  // durability does not need utilization
    build.reimage_months = 12;
    build.scale = 0.2 * BenchScale();
    build.per_server_traces = false;
    Cluster cluster = BuildCluster(profile, build, rng);

    double lost[2][2];  // [policy][replication]
    for (int p = 0; p < 2; ++p) {
      for (int r = 0; r < 2; ++r) {
        DurabilityOptions options;
        options.placement = p == 0 ? PlacementKind::kStock : PlacementKind::kHistory;
        options.replication = r == 0 ? 3 : 4;
        options.num_blocks = blocks;
        options.months = 12;
        options.seed = 2016;
        lost[p][r] = RunDurabilityExperiment(cluster, options).lost_percent;
      }
    }
    std::printf("%-6s %15.4f%% %15.4f%% %15.4f%% %15.4f%%\n", profile.name.c_str(),
                lost[0][0], lost[1][0], lost[0][1], lost[1][1]);
    stock3_total += lost[0][0];
    h3_total += lost[1][0];
    if (lost[1][1] > 0.0) {
      ++h4_losses;
    }
  }

  PrintRule();
  std::printf("Shape check: H-3x cuts loss vs Stock-3x by %.0fx on aggregate (paper: >100x);\n"
              "H-4x shows loss in %d/10 datacenters (paper: 0/10); H-3x should usually beat\n"
              "Stock-4x.\n",
              h3_total > 0.0 ? stock3_total / h3_total : stock3_total > 0 ? 1e9 : 1.0,
              h4_losses);
  return 0;
}
