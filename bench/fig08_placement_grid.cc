// Figure 8: the two-dimensional clustering scheme for replica placement --
// reimage-frequency columns x peak-utilization rows, each cell holding the
// same amount of harvestable space -- plus an example selection for one
// three-way-replicated block (no repeated row or column, distinct
// environments).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/core/replica_placement.h"

int main() {
  using namespace harvest;
  PrintHeader("Figure 8", "two-dimensional placement grid and example selection");

  Rng rng(2016);
  BuildOptions build;
  build.trace_slots = kSlotsPerDay * 2;
  build.reimage_months = 1;
  build.scale = 0.5 * BenchScale();
  build.per_server_traces = false;
  Cluster cluster = BuildCluster(DatacenterByName("DC-9"), build, rng);

  PlacementGrid grid = PlacementGrid::Build(CollectPlacementStats(cluster));
  std::printf("\n%zu tenants, %zu servers, %lld total harvestable blocks, balance ratio %.2f\n",
              cluster.num_tenants(), cluster.num_servers(), (long long)grid.total_blocks(),
              grid.BalanceRatio());

  std::printf("\n%-28s %-22s %-22s %-22s\n", "peak util \\ reimages",
              "infrequent (col 0)", "intermediate (col 1)", "frequent (col 2)");
  const char* row_names[] = {"low    (row 0)", "medium (row 1)", "high   (row 2)"};
  for (int r = 0; r < kGridDim; ++r) {
    std::printf("%-28s", row_names[r]);
    for (int c = 0; c < kGridDim; ++c) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%zu tenants/%lldK blk",
                    grid.cell(r, c).tenants.size(),
                    (long long)(grid.cell(r, c).total_blocks / 1000));
      std::printf(" %-22s", cell);
    }
    std::printf("\n");
  }

  ReplicaPlacer placer(&cluster, &grid);
  auto always = [](ServerId) { return true; };
  PrintRule();
  std::printf("Example placements (replication 3; writer cell first):\n");
  for (int example = 0; example < 5; ++example) {
    ServerId writer = static_cast<ServerId>(rng.NextBounded(cluster.num_servers()));
    std::vector<ServerId> replicas = placer.Place(writer, 3, always, rng);
    std::printf("  block %d:", example);
    for (ServerId s : replicas) {
      auto [row, col] = grid.CellOfTenant(cluster.server(s).tenant);
      std::printf(" server %d [tenant %d, cell (%d,%d)]", s, cluster.server(s).tenant, row, col);
    }
    std::printf("\n");
  }
  std::printf("Shape check: within each block no row or column repeats (paper lines 9-11)\n");
  return 0;
}
