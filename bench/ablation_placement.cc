// Ablation of the replica-placement design choices DESIGN.md calls out:
//   * Algorithm 2 (2D grid, row/column + environment constraints)
//   * the greedy "best-first" strawman the paper rejects in §4.2
//   * plain random placement
//   * soft constraints (space over diversity -- the initial production
//     configuration the paper rolled back, §7 lesson 3)
// Each variant runs the one-year durability experiment and the availability
// sweep so both dimensions of the trade-off are visible.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/availability.h"
#include "src/experiments/cluster_scaling.h"
#include "src/experiments/durability.h"

int main() {
  using namespace harvest;
  PrintHeader("Ablation", "replica placement: Algorithm 2 vs greedy / random / soft variants");

  Rng rng(2016);
  BuildOptions build;
  build.trace_slots = kSlotsPerDay * 2;
  build.reimage_months = 12;
  build.scale = 0.25 * BenchScale();
  build.per_server_traces = false;
  Cluster cluster = BuildCluster(DatacenterByName("DC-7"), build, rng);
  Cluster busy = ScaleClusterUtilization(cluster, ScalingMethod::kLinear, 0.5);

  const PlacementKind kinds[] = {PlacementKind::kHistory, PlacementKind::kGreedy,
                                 PlacementKind::kRandom, PlacementKind::kSoft,
                                 PlacementKind::kStock};

  std::printf("\n%-14s %16s %18s\n", "policy", "lost%% (3x, 1y)", "failed%% (3x, 50%% util)");
  for (PlacementKind kind : kinds) {
    DurabilityOptions durability;
    durability.placement = kind;
    durability.replication = 3;
    durability.num_blocks = static_cast<int64_t>(80000 * BenchScale());
    durability.months = 12;
    durability.seed = 2016;
    DurabilityResult loss = RunDurabilityExperiment(cluster, durability);

    AvailabilityOptions availability;
    availability.placement = kind;
    availability.replication = 3;
    availability.num_blocks = static_cast<int64_t>(30000 * BenchScale());
    availability.num_accesses = static_cast<int64_t>(100000 * BenchScale());
    availability.seed = 2016;
    AvailabilityResult failed = RunAvailabilityExperiment(busy, availability);

    std::printf("%-14s %15.4f%% %17.3f%%\n", PlacementKindName(kind), loss.lost_percent,
                failed.failed_percent);
  }

  PrintRule();
  std::printf("Expected ordering: Algorithm 2 (HDFS-H) at or near the best on BOTH columns.\n"
              "Greedy best-first looks good early but degrades one dimension (it fills the\n"
              "safest tenants first and ignores the interaction); random fixes durability\n"
              "correlation but not availability correlation; soft constraints trade loss for\n"
              "fill rate (the paper's production lesson); stock is worst on both.\n");
  return 0;
}
