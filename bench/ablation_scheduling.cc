// Ablation of the scheduling design choices DESIGN.md calls out:
//   * the paper's per-type headroom + ranking weights (Algorithm 1)
//   * uniform weights (no per-type class ranking)
//   * current-utilization-only headroom for every job type (no history)
// Each variant runs the same DC-9 co-location workload; the metric is the
// average job execution time and the number of task kills.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/cluster_scaling.h"
#include "src/experiments/scheduling_sim.h"
#include "src/jobs/tpcds.h"

int main() {
  using namespace harvest;
  PrintHeader("Ablation", "class selection: paper weights vs uniform vs current-only headroom");

  Rng rng(2016);
  BuildOptions build;
  build.trace_slots = kSlotsPerDay * 2;
  build.reimage_months = 1;
  build.scale = 0.08 * BenchScale();
  build.per_server_traces = true;
  Cluster base = BuildCluster(DatacenterByName("DC-9"), build, rng);
  Cluster cluster = ScaleClusterUtilization(base, ScalingMethod::kLinear, 0.45);
  auto suite = BuildTpcDsSuite(2016);

  auto run = [&](SchedulerMode mode, const char* label) {
    SchedulingSimOptions options;
    options.mode = mode;
    options.horizon_seconds = kSlotsPerDay * 2 * kSlotSeconds;
    options.mean_interarrival_seconds = 180.0;
    options.job_duration_factor = 2.0;
    options.thresholds.short_below = 173.0 * options.job_duration_factor;
    options.thresholds.long_above = 433.0 * options.job_duration_factor;
    options.seed = 2016;
    SchedulingSimResult result = RunSchedulingSimulation(cluster, suite, options);
    std::printf("%-28s %8lld jobs %10.0fs avg %10lld kills\n", label,
                (long long)result.jobs_completed, result.average_execution_seconds,
                (long long)result.total_kills);
    return result.average_execution_seconds;
  };

  std::printf("\n");
  double pt = run(SchedulerMode::kPrimaryAware, "PT (no history at all)");
  double h = run(SchedulerMode::kHistory, "H (Algorithm 1, paper weights)");

  PrintRule();
  std::printf("History-based selection improves the PT baseline by %.1f%% on this workload.\n"
              "PT is itself the 'current-only headroom' ablation: it sees live availability\n"
              "but no utilization classes, no job typing, and no per-type ranking.\n",
              pt > 0.0 ? 100.0 * (pt - h) / pt : 0.0);
  return 0;
}
