// Figures 2 and 3: percentages of primary tenants (Fig 2) and of servers
// (Fig 3) per utilization class, for all ten datacenters. Paper shape:
// constant tenants dominate Fig 2 and periodic tenants are a small minority,
// yet periodic tenants cover ~40% of servers on average and
// periodic+constant cover ~75% (Fig 3).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/experiments/characterization.h"

int main() {
  using namespace harvest;
  PrintHeader("Figures 2 + 3", "tenant and server percentages per utilization class");

  CharacterizationOptions options;
  options.months = 3;  // pattern mixes need traces, not long reimage history
  options.cluster_scale = 0.6 * BenchScale();
  options.seed = 2016;
  auto all = CharacterizeAllDatacenters(options);

  std::printf("\nFig 2 -- %% of primary tenants per class\n");
  std::printf("%-6s %10s %10s %14s %9s\n", "DC", "periodic", "constant", "unpredictable",
              "tenants");
  double periodic_server_sum = 0.0;
  double predictable_server_sum = 0.0;
  for (const auto& dc : all) {
    std::printf("%-6s %9.1f%% %9.1f%% %13.1f%% %9d\n", dc.name.c_str(),
                100.0 * dc.tenant_fraction[0], 100.0 * dc.tenant_fraction[1],
                100.0 * dc.tenant_fraction[2], dc.num_tenants);
  }

  std::printf("\nFig 3 -- %% of servers per class\n");
  std::printf("%-6s %10s %10s %14s %9s\n", "DC", "periodic", "constant", "unpredictable",
              "servers");
  for (const auto& dc : all) {
    std::printf("%-6s %9.1f%% %9.1f%% %13.1f%% %9d\n", dc.name.c_str(),
                100.0 * dc.server_fraction[0], 100.0 * dc.server_fraction[1],
                100.0 * dc.server_fraction[2], dc.num_servers);
    periodic_server_sum += dc.server_fraction[0];
    predictable_server_sum += dc.server_fraction[0] + dc.server_fraction[1];
  }

  PrintRule();
  std::printf("Averages across datacenters: periodic servers %.1f%% (paper ~40%%), "
              "periodic+constant %.1f%% (paper ~75%%).\n",
              100.0 * periodic_server_sum / all.size(),
              100.0 * predictable_server_sum / all.size());
  return 0;
}
