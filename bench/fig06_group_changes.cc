// Figure 6: CDF of the number of times each primary tenant changed reimage
// frequency groups (infrequent / intermediate / frequent tertiles) from one
// month to the next over three years. Paper anchor: at least 80% of primary
// tenants changed groups 8 or fewer times out of the 35 possible changes.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/experiments/characterization.h"

int main() {
  using namespace harvest;
  PrintHeader("Figure 6", "reimage-group changes over three years (CDF across tenants)");

  CharacterizationOptions options;
  options.months = 36;
  options.cluster_scale = 0.5 * BenchScale();
  options.seed = 2016;

  const char* plotted[] = {"DC-0", "DC-7", "DC-9", "DC-3", "DC-1"};
  std::printf("\n%-6s", "DC");
  for (int limit : {0, 2, 4, 6, 8, 12, 16, 20}) {
    std::printf("   <=%-3d", limit);
  }
  std::printf("\n");

  for (const char* name : plotted) {
    DatacenterCharacterization dc = CharacterizeDatacenter(DatacenterByName(name), options);
    std::printf("%-6s", name);
    for (int limit : {0, 2, 4, 6, 8, 12, 16, 20}) {
      int below = 0;
      for (int changes : dc.group_changes) {
        if (changes <= limit) {
          ++below;
        }
      }
      std::printf(" %6.1f%%", 100.0 * below / std::max<size_t>(1, dc.group_changes.size()));
    }
    std::printf("   (%d tenants, %d transitions)\n", dc.num_tenants,
                dc.group_change_transitions);
  }

  PrintRule();
  std::printf("Paper anchor: >= 80%% of tenants at <= 8 changes of 35 -- check the <=8 "
              "column above.\n");
  return 0;
}
