// Shared helpers for the figure-regeneration benches: consistent headers,
// table formatting, and an environment knob for run scale.
//
// Every bench prints the paper's figure/table as text series so the shape of
// the result (who wins, by what factor, where crossovers fall) can be
// compared against the publication; absolute values differ by design (the
// substrate is a simulator, see DESIGN.md).

#ifndef HARVEST_BENCH_BENCH_COMMON_H_
#define HARVEST_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace harvest {

// HARVEST_BENCH_SCALE scales fleet sizes / block counts (default 1.0 =
// minutes-long full bench run; smaller = faster smoke run).
inline double BenchScale() {
  const char* env = std::getenv("HARVEST_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline void PrintHeader(const char* figure, const char* title) {
  std::printf("==============================================================================\n");
  std::printf("%s -- %s\n", figure, title);
  std::printf("(reproduction of Zhang et al., OSDI'16; synthetic substrate, seed-deterministic)\n");
  std::printf("==============================================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------------------\n");
}

}  // namespace harvest

#endif  // HARVEST_BENCH_BENCH_COMMON_H_
