// §6.2 performance microbenchmarks, via google-benchmark: the most expensive
// operations in the systems are the clustering and class selection in task
// scheduling and data placement. Paper reference points (DC-9): utilization
// clustering ~2 minutes single-threaded once per day off the critical path;
// class selection < 1 ms; data placement clustering + selection ~2.55 ms per
// new block vs 0.81 ms for stock HDFS.

#include <benchmark/benchmark.h>

#include "src/cluster/datacenter.h"
#include "src/core/class_selector.h"
#include "src/core/kmeans.h"
#include "src/core/utilization_clustering.h"
#include "src/signal/fft.h"
#include "src/storage/placement.h"

namespace harvest {
namespace {

const Cluster& SharedCluster() {
  static const Cluster cluster = [] {
    Rng rng(2016);
    BuildOptions build;
    build.trace_slots = kSlotsPerDay * 7;
    build.reimage_months = 1;
    build.scale = 0.5;
    build.per_server_traces = false;
    return BuildCluster(DatacenterByName("DC-9"), build, rng);
  }();
  return cluster;
}

void BM_FftMonthTrace(benchmark::State& state) {
  std::vector<double> series(kSlotsPerMonth);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = 0.3 + 0.2 * std::sin(0.01 * static_cast<double>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MagnitudeSpectrum(series));
  }
}
BENCHMARK(BM_FftMonthTrace);

void BM_FrequencyProfile(benchmark::State& state) {
  std::vector<double> series(kSlotsPerMonth);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = 0.3 + 0.2 * std::sin(0.01 * static_cast<double>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeFrequencyProfile(series));
  }
}
BENCHMARK(BM_FrequencyProfile);

void BM_KMeans(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    points.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
  }
  for (auto _ : state) {
    Rng inner(2);
    benchmark::DoNotOptimize(KMeansCluster(points, 5, inner));
  }
}
BENCHMARK(BM_KMeans)->Arg(100)->Arg(1000);

// The daily clustering service run (paper: ~2 min for DC-9 at production
// scale; scaled fleet here).
void BM_UtilizationClusteringService(benchmark::State& state) {
  const Cluster& cluster = SharedCluster();
  UtilizationClusteringService service;
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(service.Run(cluster, rng));
  }
}
BENCHMARK(BM_UtilizationClusteringService)->Unit(benchmark::kMillisecond);

// Class selection (paper: < 1 ms).
void BM_ClassSelection(benchmark::State& state) {
  const Cluster& cluster = SharedCluster();
  UtilizationClusteringService service;
  Rng setup(4);
  ClusteringSnapshot snapshot = service.Run(cluster, setup);
  ClassSelector selector(&snapshot);
  std::vector<ClassState> states;
  for (const auto& cls : snapshot.classes) {
    states.push_back(ClassState{cls.id, cls.average_utilization, cls.total_cores / 2});
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(JobType::kLong, 100, states, rng));
  }
}
BENCHMARK(BM_ClassSelection)->Unit(benchmark::kMicrosecond);

// Replica placement per new block (paper: 2.55 ms for HDFS-H vs 0.81 ms for
// stock, including the NN's data structure updates).
void BM_StockPlacementPerBlock(benchmark::State& state) {
  const Cluster& cluster = SharedCluster();
  StockPlacement policy(&cluster);
  auto always = [](ServerId) { return true; };
  Rng rng(6);
  for (auto _ : state) {
    ServerId writer = static_cast<ServerId>(rng.NextBounded(cluster.num_servers()));
    benchmark::DoNotOptimize(policy.Place(writer, 3, always, rng));
  }
}
BENCHMARK(BM_StockPlacementPerBlock)->Unit(benchmark::kMicrosecond);

void BM_HistoryPlacementPerBlock(benchmark::State& state) {
  const Cluster& cluster = SharedCluster();
  HistoryPlacement policy(&cluster);
  auto always = [](ServerId) { return true; };
  Rng rng(7);
  for (auto _ : state) {
    ServerId writer = static_cast<ServerId>(rng.NextBounded(cluster.num_servers()));
    benchmark::DoNotOptimize(policy.Place(writer, 3, always, rng));
  }
}
BENCHMARK(BM_HistoryPlacementPerBlock)->Unit(benchmark::kMicrosecond);

// Grid construction (runs off the critical path in NN-H).
void BM_PlacementGridBuild(benchmark::State& state) {
  const Cluster& cluster = SharedCluster();
  auto stats = CollectPlacementStats(cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlacementGrid::Build(stats));
  }
}
BENCHMARK(BM_PlacementGridBuild)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace harvest

BENCHMARK_MAIN();
