// Figure 10: the primary tenant's tail latency (average of per-server p99,
// per minute) on the testbed under No-Harvesting, YARN-Stock, YARN-PT, and
// YARN-H/Tez-H. Paper shape: Stock ruins tail latency; PT keeps it low by
// killing tasks; H nearly matches No-Harvesting (max difference 44 ms).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/scheduling_sim.h"
#include "src/jobs/tpcds.h"
#include "src/util/stats.h"

namespace {

harvest::SummaryStats Summarize(const std::vector<double>& series) {
  harvest::SummaryStats stats;
  for (double v : series) {
    stats.Add(v);
  }
  return stats;
}

}  // namespace

int main() {
  using namespace harvest;
  PrintHeader("Figure 10", "primary tail latency under the YARN variants (testbed)");

  const double horizon = 5.0 * 3600.0 * std::min(1.0, BenchScale());
  Rng rng(2016);
  Cluster cluster = BuildTestbedCluster(102, kSlotsPerDay * 2, rng);

  SchedulingSimOptions base;
  base.horizon_seconds = horizon;
  base.mean_interarrival_seconds = 300.0;
  base.collect_latency = true;
  base.seed = 2016;
  auto suite = BuildTpcDsSuite(2016);

  struct Variant {
    const char* label;
    SchedulingSimResult result;
  };
  std::vector<Variant> variants;

  variants.push_back({"No-Harvesting", RunNoHarvestingBaseline(cluster, base)});
  for (SchedulerMode mode :
       {SchedulerMode::kStock, SchedulerMode::kPrimaryAware, SchedulerMode::kHistory}) {
    SchedulingSimOptions options = base;
    options.mode = mode;
    std::string label = std::string("YARN-") + SchedulerModeName(mode);
    variants.push_back({mode == SchedulerMode::kStock ? "YARN-Stock"
                        : mode == SchedulerMode::kPrimaryAware ? "YARN-PT"
                                                               : "YARN-H/Tez-H",
                        RunSchedulingSimulation(cluster, suite, options)});
  }

  std::printf("\n%-16s %10s %10s %10s %10s %8s\n", "system", "mean p99", "min p99", "max p99",
              "p95 p99", "kills");
  double baseline_mean = 0.0;
  for (const auto& variant : variants) {
    SummaryStats stats = Summarize(variant.result.p99_series_ms);
    if (baseline_mean == 0.0) {
      baseline_mean = stats.mean();
    }
    std::printf("%-16s %8.0fms %8.0fms %8.0fms %8.0fms %8lld\n", variant.label, stats.mean(),
                stats.min(), stats.max(),
                Percentile(variant.result.p99_series_ms, 95.0),
                (long long)variant.result.total_kills);
  }

  PrintRule();
  SummaryStats no_harvest = Summarize(variants[0].result.p99_series_ms);
  SummaryStats h = Summarize(variants[3].result.p99_series_ms);
  std::printf("Shape check: Stock >> others; H vs No-Harvesting mean difference: %.0f ms "
              "(paper max 44 ms, baseline range 369-406 ms; ours %.0f-%.0f ms).\n",
              h.mean() - no_harvest.mean(), no_harvest.min(), no_harvest.max());

  std::printf("\nPer-minute p99 series (ms), first 60 windows:\n");
  for (const auto& variant : variants) {
    std::printf("%-16s:", variant.label);
    size_t count = std::min<size_t>(60, variant.result.p99_series_ms.size());
    for (size_t i = 0; i < count; ++i) {
      std::printf(" %.0f", variant.result.p99_series_ms[i]);
    }
    std::printf("\n");
  }
  return 0;
}
