// Figures 4 and 5: CDFs of per-server reimages/month (Fig 4) and per-tenant
// reimages/server/month (Fig 5) over three years, for the five datacenters
// the paper plots. Paper anchors: >= 90% of servers and >= 80% of tenants at
// <= 1 reimage/month; three datacenters substantially lower per server.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/experiments/characterization.h"

namespace {

void PrintCdfRow(const char* name, const harvest::Cdf& cdf) {
  std::printf("%-6s", name);
  for (double x : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    std::printf(" %7.1f%%", 100.0 * cdf.At(x));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace harvest;
  PrintHeader("Figures 4 + 5", "reimage-frequency CDFs over three years (five datacenters)");

  CharacterizationOptions options;
  options.months = 36;
  options.cluster_scale = 0.5 * BenchScale();
  options.seed = 2016;

  const char* plotted[] = {"DC-0", "DC-7", "DC-9", "DC-3", "DC-1"};

  std::printf("\nFig 4 -- CDF of per-server reimages/month (cumulative %% of servers)\n");
  std::printf("%-6s %8s %8s %8s %8s %8s %8s %8s\n", "DC", "<=0", "<=0.25", "<=0.5",
              "<=0.75", "<=1", "<=1.5", "<=2");
  std::vector<DatacenterCharacterization> results;
  for (const char* name : plotted) {
    results.push_back(CharacterizeDatacenter(DatacenterByName(name), options));
    PrintCdfRow(name, Cdf(results.back().server_reimage_rates));
  }

  std::printf("\nFig 5 -- CDF of per-tenant reimages/server/month (cumulative %% of tenants)\n");
  std::printf("%-6s %8s %8s %8s %8s %8s %8s %8s\n", "DC", "<=0", "<=0.25", "<=0.5",
              "<=0.75", "<=1", "<=1.5", "<=2");
  for (size_t i = 0; i < results.size(); ++i) {
    PrintCdfRow(plotted[i], Cdf(results[i].tenant_reimage_rates));
  }

  PrintRule();
  for (size_t i = 0; i < results.size(); ++i) {
    Cdf servers(results[i].server_reimage_rates);
    Cdf tenants(results[i].tenant_reimage_rates);
    std::printf("%s: servers <=1/mo: %.1f%% (paper >=90%%), tenants <=1/srv/mo: %.1f%% "
                "(paper >=80%%)\n",
                plotted[i], 100.0 * servers.At(1.0), 100.0 * tenants.At(1.0));
  }
  return 0;
}
