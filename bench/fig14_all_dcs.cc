// Figure 14: minimum, average, and maximum job execution time improvements
// from YARN-H/Tez-H over YARN-PT across the utilization spectrum, for every
// datacenter and both scaling methods. Paper shape: average improvements of
// 12-56% (linear) and 5-45% (root); the lowest averages belong to DC-0 and
// DC-2 (least temporal variation), the highest to DC-1 and DC-4 (most).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/cluster_scaling.h"
#include "src/experiments/scheduling_sim.h"
#include "src/jobs/tpcds.h"
#include "src/util/stats.h"

int main() {
  using namespace harvest;
  PrintHeader("Figure 14", "per-datacenter run-time improvements from history scheduling");

  auto suite = BuildTpcDsSuite(2016);
  const double utilizations[] = {0.30, 0.42, 0.54};

  std::printf("\n%-6s | %28s | %28s\n", "", "linear scaling", "root scaling");
  std::printf("%-6s | %8s %8s %8s | %8s %8s %8s\n", "DC", "min", "avg", "max", "min", "avg",
              "max");

  for (const auto& profile : AllDatacenterProfiles()) {
    Rng rng(2016 + StableHash(profile.name));
    BuildOptions build;
    build.trace_slots = kSlotsPerDay * 2;
    build.reimage_months = 1;
    build.scale = 0.05 * BenchScale();
    build.per_server_traces = true;
    Cluster base = BuildCluster(profile, build, rng);

    std::printf("%-6s |", profile.name.c_str());
    for (ScalingMethod method : {ScalingMethod::kLinear, ScalingMethod::kRoot}) {
      SummaryStats improvements;
      for (double target : utilizations) {
        Cluster cluster = ScaleClusterUtilization(base, method, target);
        double avg[2] = {0.0, 0.0};
        int index = 0;
        for (SchedulerMode mode : {SchedulerMode::kPrimaryAware, SchedulerMode::kHistory}) {
          SchedulingSimOptions options;
          options.mode = mode;
          options.horizon_seconds = kSlotsPerDay * 2 * kSlotSeconds;
          options.mean_interarrival_seconds = 300.0;
          options.job_duration_factor = 2.0;
          options.thresholds.short_below = 173.0 * options.job_duration_factor;
          options.thresholds.long_above = 433.0 * options.job_duration_factor;
          options.seed = 2016;
          avg[index++] =
              RunSchedulingSimulation(cluster, suite, options).average_execution_seconds;
        }
        if (avg[0] > 0.0) {
          improvements.Add(100.0 * (avg[0] - avg[1]) / avg[0]);
        }
      }
      std::printf(" %7.1f%% %7.1f%% %7.1f%% |", improvements.min(), improvements.mean(),
                  improvements.max());
    }
    std::printf("\n");
  }

  PrintRule();
  std::printf("Shape check: averages positive everywhere; DC-0/DC-2 lowest, DC-1/DC-4 highest\n"
              "(they have the least/most primary-tenant utilization variation over time);\n"
              "linear-scaling improvements exceed root-scaling ones.\n");
  return 0;
}
