// Figure 1: sample periodic and unpredictable one-month traces in the time
// and frequency domains. Prints hourly-downsampled time series plus the
// leading magnitude-spectrum bins; the periodic tenant shows a strong line
// at ~30 cycles/month (daily), the unpredictable tenant a decreasing trend.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/signal/spectrum.h"
#include "src/trace/generators.h"

namespace harvest {
namespace {

void PrintTrace(const char* label, const UtilizationTrace& trace) {
  std::printf("\n[%s] time domain (daily profile, hourly means, %% CPU):\n", label);
  for (int day : {0, 1, 2}) {
    std::printf("  day %d:", day);
    for (int hour = 0; hour < 24; ++hour) {
      size_t first = static_cast<size_t>(day) * kSlotsPerDay +
                     static_cast<size_t>(hour) * kSlotsPerDay / 24;
      std::printf(" %4.0f", 100.0 * trace.WindowAverage(first, kSlotsPerDay / 24));
    }
    std::printf("\n");
  }

  FrequencyProfile profile = ComputeFrequencyProfile(trace.samples());
  std::printf("[%s] frequency domain:\n", label);
  std::printf("  mean=%.2f stddev=%.3f peak=%.2f\n", profile.mean, profile.stddev, profile.peak);
  std::printf("  dominant bin: %zu (%.2f cycles/day), windowed share %.3f, peak/median %.0f\n",
              profile.dominant_frequency, profile.dominant_cycles_per_day,
              profile.dominant_share, profile.peak_to_median);
  std::printf("  leading non-DC bins (normalized):");
  for (double bin : profile.feature_bins) {
    std::printf(" %.3f", bin);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace harvest

int main() {
  using namespace harvest;
  PrintHeader("Figure 1", "periodic vs unpredictable traces, time + frequency domains");
  Rng rng(2016);

  PeriodicTraceParams periodic;
  periodic.base = 0.38;
  periodic.daily_amplitude = 0.22;
  UtilizationTrace diurnal = GeneratePeriodicTrace(periodic, kSlotsPerMonth, rng);
  PrintTrace("periodic (user-facing service)", diurnal);

  UnpredictableTraceParams wild;
  wild.base = 0.18;
  wild.burst_rate_per_day = 1.2;
  wild.burst_height = 0.5;
  UtilizationTrace bursty = GenerateUnpredictableTrace(wild, kSlotsPerMonth, rng);
  PrintTrace("unpredictable (testing tenant)", bursty);

  PrintRule();
  std::printf("Paper shape check: the periodic tenant must show a strong isolated line at\n"
              "~1 cycle/day (Fig 1b shows 31 cycles over a 31-day month); the unpredictable\n"
              "tenant's energy must decrease with frequency (Fig 1d).\n");
  return 0;
}
