// Figure 16: percentage of failed block accesses as a function of average
// utilization under linear scaling, for HDFS-Stock vs HDFS-H at three- and
// four-way replication. Paper shape: HDFS-H shows no unavailability up to
// ~40% utilization and low unavailability at 50%; HDFS-Stock already fails
// noticeably by 50%; unavailability rises sharply past the 66% wall; H at 3x
// beats Stock at 4x below ~75%.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/availability.h"
#include "src/experiments/cluster_scaling.h"

int main() {
  using namespace harvest;
  PrintHeader("Figure 16", "failed accesses vs utilization, linear scaling, 3x/4x replication");

  Rng rng(2016);
  BuildOptions build;
  build.trace_slots = kSlotsPerDay * 2;
  build.reimage_months = 1;
  build.scale = 0.25 * BenchScale();
  build.per_server_traces = false;
  Cluster base = BuildCluster(DatacenterByName("DC-9"), build, rng);

  const double utilizations[] = {0.25, 0.35, 0.45, 0.55, 0.65, 0.75};
  std::printf("\n%-8s %14s %14s %14s %14s\n", "util", "Stock-3x", "H-3x", "Stock-4x", "H-4x");
  for (double target : utilizations) {
    Cluster cluster = ScaleClusterUtilization(base, ScalingMethod::kLinear, target);
    std::printf("%6.0f%% ", 100.0 * target);
    for (int replication : {3, 4}) {
      for (PlacementKind placement : {PlacementKind::kStock, PlacementKind::kHistory}) {
        AvailabilityOptions options;
        options.placement = placement;
        options.replication = replication;
        options.num_blocks = static_cast<int64_t>(40000 * BenchScale());
        options.num_accesses = static_cast<int64_t>(150000 * BenchScale());
        options.seed = 2016;
        AvailabilityResult result = RunAvailabilityExperiment(cluster, options);
        std::printf(" %13.3f%%", result.failed_percent);
      }
    }
    std::printf("\n");
  }
  std::printf("(columns are Stock-3x, H-3x, Stock-4x, H-4x)\n");

  PrintRule();
  std::printf("Shape check: H-3x at or near zero through ~40-50%% utilization while Stock-3x\n"
              "already fails; both rise sharply as the fleet crosses the 66%% access wall;\n"
              "H-3x <= Stock-4x at moderate utilizations.\n");
  return 0;
}
