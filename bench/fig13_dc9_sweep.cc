// Figure 13: average batch-job execution time in DC-9 for YARN-PT vs
// YARN-H/Tez-H across the utilization spectrum, under linear and root
// utilization scaling. Paper shape: execution times rise with utilization;
// H improves on PT across most of the spectrum; the H advantage is larger
// under linear scaling (which amplifies temporal variation); PT under linear
// scaling degrades earliest.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/cluster_scaling.h"
#include "src/experiments/scheduling_sim.h"
#include "src/jobs/tpcds.h"

int main() {
  using namespace harvest;
  PrintHeader("Figure 13", "DC-9 job execution time vs utilization, linear and root scaling");

  Rng rng(2016);
  BuildOptions build;
  build.trace_slots = kSlotsPerDay * 2;
  build.reimage_months = 1;
  // Note: below ~15 tenants the class statistics get noisy and low-
  // utilization cells of this sweep flap; keep the fleet at a few hundred
  // servers minimum.
  build.scale = 0.15 * BenchScale();
  build.per_server_traces = true;
  Cluster base = BuildCluster(DatacenterByName("DC-9"), build, rng);
  auto suite = BuildTpcDsSuite(2016);
  std::printf("\nfleet: %zu servers, %zu tenants (scaled; paper simulates the full DC)\n",
              base.num_servers(), base.num_tenants());

  const double utilizations[] = {0.25, 0.35, 0.45, 0.55};
  std::printf("\n%-8s %-8s %12s %12s %12s %12s %12s\n", "scaling", "util", "PT avg",
              "H avg", "improve", "PT kills", "H kills");
  for (ScalingMethod method : {ScalingMethod::kLinear, ScalingMethod::kRoot}) {
    for (double target : utilizations) {
      Cluster cluster = ScaleClusterUtilization(base, method, target);
      double avg[2] = {0.0, 0.0};
      int64_t kills[2] = {0, 0};
      int index = 0;
      for (SchedulerMode mode : {SchedulerMode::kPrimaryAware, SchedulerMode::kHistory}) {
        SchedulingSimOptions options;
        options.mode = mode;
        options.horizon_seconds = kSlotsPerDay * 2 * kSlotSeconds;
        options.mean_interarrival_seconds = 200.0;
        options.job_duration_factor = 2.0;
        options.thresholds.short_below = 173.0 * options.job_duration_factor;
        options.thresholds.long_above = 433.0 * options.job_duration_factor;
        options.seed = 2016;
        SchedulingSimResult result = RunSchedulingSimulation(cluster, suite, options);
        avg[index] = result.average_execution_seconds;
        kills[index] = result.total_kills;
        ++index;
      }
      double improvement = avg[0] > 0.0 ? 100.0 * (avg[0] - avg[1]) / avg[0] : 0.0;
      std::printf("%-8s %6.0f%% %11.0fs %11.0fs %11.1f%% %12lld %12lld\n",
                  ScalingMethodName(method), 100.0 * target, avg[0], avg[1], improvement,
                  (long long)kills[0], (long long)kills[1]);
    }
  }

  PrintRule();
  std::printf("Shape check: execution time rises with utilization for both systems; H's\n"
              "improvement is positive across most of the spectrum and larger under linear\n"
              "scaling (paper: 0-55%% linear, 3-41%% root for DC-9).\n");
  return 0;
}
