// Figure 12: the primary tenant's tail latency on the testbed for the HDFS
// variants. Paper shape: HDFS-Stock degrades tail latency significantly
// (accesses interfere with busy primaries); HDFS-PT and HDFS-H keep the
// degradation at most ~47 ms by denying accesses on busy servers; HDFS-PT
// suffered 47 failed accesses while HDFS-H's smart placement eliminated all
// of them.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/scheduling_sim.h"
#include "src/jobs/tpcds.h"
#include "src/util/stats.h"

namespace {

harvest::SummaryStats Summarize(const std::vector<double>& series) {
  harvest::SummaryStats stats;
  for (double v : series) {
    stats.Add(v);
  }
  return stats;
}

}  // namespace

int main() {
  using namespace harvest;
  PrintHeader("Figure 12", "primary tail latency under the HDFS variants (testbed)");

  const double horizon = 5.0 * 3600.0 * std::min(1.0, BenchScale());
  Rng rng(2016);
  Cluster cluster = BuildTestbedCluster(102, kSlotsPerDay * 2, rng);
  auto suite = BuildTpcDsSuite(2016);

  SchedulingSimOptions base;
  base.horizon_seconds = horizon;
  base.mean_interarrival_seconds = 300.0;
  base.collect_latency = true;
  base.storage_blocks = 5000;
  base.seed = 2016;

  std::printf("\n%-12s %10s %10s %10s %12s %14s\n", "system", "mean p99", "max p99",
              "accesses", "failed", "interfering");
  double baseline = 0.0;
  for (StorageVariant variant :
       {StorageVariant::kStock, StorageVariant::kPrimaryAware, StorageVariant::kHistory}) {
    SchedulingSimOptions options = base;
    options.storage = variant;
    // The paper pairs stock YARN with stock HDFS, and YARN-PT with the
    // primary-aware HDFS versions, to isolate storage effects.
    options.mode = variant == StorageVariant::kStock ? SchedulerMode::kStock
                                                     : SchedulerMode::kPrimaryAware;
    SchedulingSimResult result = RunSchedulingSimulation(cluster, suite, options);
    SummaryStats stats = Summarize(result.p99_series_ms);
    if (variant == StorageVariant::kStock) {
      baseline = stats.mean();
    }
    std::printf("%-12s %8.0fms %8.0fms %10lld %12lld %14lld\n", StorageVariantName(variant),
                stats.mean(), stats.max(), (long long)result.storage.accesses,
                (long long)result.storage.failed_accesses,
                (long long)result.storage.interfering_accesses);
  }

  // The No-Harvesting latency reference.
  SchedulingSimResult no_harvest = RunNoHarvestingBaseline(cluster, base);
  SummaryStats reference = Summarize(no_harvest.p99_series_ms);
  PrintRule();
  std::printf("No-Harvesting reference: mean p99 %.0f ms. Shape check: HDFS-Stock well above\n"
              "the reference (%.0f ms here); PT/H within tens of ms; HDFS-PT shows failed\n"
              "accesses (paper: 47) while HDFS-H eliminates them (paper: 0).\n",
              reference.mean(), baseline - reference.mean());
  return 0;
}
