// Figure 11: the secondary tenants' (TPC-DS job) run times on the testbed
// for YARN-Stock, YARN-PT, and YARN-H/Tez-H. Paper shape: Stock is fastest
// (at the unacceptable cost of ruining the primary tenant); PT is slowest
// (1181 s average in the paper) because it kills and re-runs tasks; H lowers
// the average significantly (938 s in the paper). Harvesting also lifts the
// testbed's average CPU utilization from 33% to 54%.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/cluster/datacenter.h"
#include "src/experiments/scheduling_sim.h"
#include "src/jobs/tpcds.h"
#include "src/util/stats.h"

int main() {
  using namespace harvest;
  PrintHeader("Figure 11", "secondary tenants' run times under the YARN variants (testbed)");

  const double horizon = 5.0 * 3600.0 * std::min(1.0, BenchScale());
  Rng rng(2016);
  Cluster cluster = BuildTestbedCluster(102, kSlotsPerDay * 2, rng);
  auto suite = BuildTpcDsSuite(2016);

  std::printf("\n%-14s %8s %10s %10s %10s %10s %8s %9s\n", "system", "jobs", "mean",
              "median", "p90", "max", "kills", "util");
  double pt_mean = 0.0;
  double h_mean = 0.0;
  double primary_util = 0.0;
  for (SchedulerMode mode :
       {SchedulerMode::kStock, SchedulerMode::kPrimaryAware, SchedulerMode::kHistory}) {
    SchedulingSimOptions options;
    options.mode = mode;
    options.horizon_seconds = horizon;
    options.mean_interarrival_seconds = 300.0;
    options.seed = 2016;
    SchedulingSimResult result = RunSchedulingSimulation(cluster, suite, options);
    std::vector<double> times;
    for (const auto& job : result.jobs) {
      times.push_back(job.execution_seconds);
    }
    std::sort(times.begin(), times.end());
    const char* label = mode == SchedulerMode::kStock ? "YARN-Stock"
                        : mode == SchedulerMode::kPrimaryAware ? "YARN-PT"
                                                               : "YARN-H/Tez-H";
    std::printf("%-14s %8lld %9.0fs %9.0fs %9.0fs %9.0fs %8lld %8.1f%%\n", label,
                (long long)result.jobs_completed, result.average_execution_seconds,
                PercentileSorted(times, 50.0), PercentileSorted(times, 90.0),
                times.empty() ? 0.0 : times.back(), (long long)result.total_kills,
                100.0 * result.average_total_utilization);
    if (mode == SchedulerMode::kPrimaryAware) {
      pt_mean = result.average_execution_seconds;
    }
    if (mode == SchedulerMode::kHistory) {
      h_mean = result.average_execution_seconds;
      primary_util = result.average_primary_utilization;
    }
  }

  PrintRule();
  std::printf("Shape check: Stock < H < PT mean run time. H improves on PT by %.1f%%\n"
              "(paper: 1181 s -> 938 s, a 20.6%% reduction). Utilization: primary-only\n"
              "%.1f%% vs harvested total above (paper: 33%% -> 54%%).\n",
              pt_mean > 0.0 ? 100.0 * (pt_mean - h_mean) / pt_mean : 0.0,
              100.0 * primary_util);
  return 0;
}
